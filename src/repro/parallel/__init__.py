"""Execution backends for embarrassingly-parallel placement work.

The flow has two hot paths whose work items are fully independent: the
per-level regions of recursive bisection (after the first cut, each
region's subproblem shares nothing with its siblings) and the per-point
pipeline runs of an ``alpha_ILV`` sweep.  This package is the single
place that owns *how* such independent tasks execute:

- :class:`SerialBackend` runs them inline, in submission order;
- :class:`ProcessPoolBackend` fans them out over worker processes.

Both present the same order-preserving :meth:`ExecutionBackend.map`
protocol, so call sites are backend-agnostic, and the worker count is
resolved in one place (:func:`resolve_workers`) from the explicit
request, the ``REPRO_WORKERS`` environment variable, or the serial
default.

Determinism contract
--------------------

Parallel execution must be *bit-identical* to serial execution.  Two
rules make that hold:

1. Tasks are pure functions of their (picklable) payload: a worker
   never reads mutable placer state, only what the payload carries.
2. Any randomness a task consumes is derived from a
   :class:`numpy.random.SeedSequence` keyed on a deterministic task id
   (:func:`task_seed_sequence`) — never from a shared stream whose
   state would depend on execution order.

This package is the only place in ``src/repro`` allowed to import
``multiprocessing`` / ``concurrent.futures`` (lint rule RPL011) — and
:mod:`repro.parallel.shared` is the one module allowed to touch
``multiprocessing.shared_memory`` (lint rule RPL015): any other
parallelism or segment lifecycle would bypass the determinism contract
above.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import Future, ProcessPoolExecutor
from types import TracebackType
from typing import (Any, Callable, Dict, Iterable, List, Optional,
                    Sequence, Type, TypeVar)

import numpy as np

from repro.parallel.shared import (PackedBatch, SegmentRef,
                                   SharedArrayPool)
from repro.parallel.shared import available as shared_memory_available
from repro.parallel.shared import resolve as resolve_packed

__all__ = ["ExecutionBackend", "PackedBatch", "ProcessPoolBackend",
           "SegmentRef", "SerialBackend", "SharedArrayPool",
           "TaskHandle", "WORKERS_ENV", "create_backend",
           "resolve_packed", "resolve_workers",
           "shared_memory_available", "task_seed", "task_seed_sequence"]

#: Environment variable consulted when no explicit worker count is set.
WORKERS_ENV = "REPRO_WORKERS"

_T = TypeVar("_T")
_R = TypeVar("_R")


def resolve_workers(requested: Optional[int] = None) -> int:
    """Resolve the effective worker count.

    Precedence: an explicit positive ``requested`` value wins; ``None``
    or ``0`` ("auto") falls back to the ``REPRO_WORKERS`` environment
    variable; absent that, execution is serial.

    Args:
        requested: explicit worker count (``--workers`` /
            ``PlacementConfig.num_workers``); ``0``/``None`` = auto.

    Returns:
        The worker count, always ``>= 1``.

    Raises:
        ValueError: a negative request, or a ``REPRO_WORKERS`` value
            that is not a non-negative integer.
    """
    if requested is not None:
        if requested < 0:
            raise ValueError(f"worker count cannot be negative: "
                             f"{requested}")
        if requested > 0:
            return int(requested)
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if raw:
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV}={raw!r} is not an integer") from None
        if value < 0:
            raise ValueError(f"{WORKERS_ENV} cannot be negative: {value}")
        if value > 0:
            return value
    return 1


def task_seed_sequence(base_seed: int, key: int) -> np.random.SeedSequence:
    """The RNG stream for task ``key`` of a run seeded with ``base_seed``.

    Equivalent to ``SeedSequence(base_seed).spawn(key + 1)[key]`` — the
    standard parent/child spawn derivation — but random-access: any task
    can derive its stream without the parent sequentially spawning all
    lower-numbered siblings first.  Streams for distinct keys are
    statistically independent, and the derivation depends only on
    ``(base_seed, key)``, never on execution or submission order.

    Args:
        base_seed: the run's root seed (``PlacementConfig.seed``).
        key: deterministic task id (e.g. a region's bisection-tree
            path id).  Must be non-negative.

    Returns:
        The child :class:`numpy.random.SeedSequence`.
    """
    if key < 0:
        raise ValueError(f"task key must be non-negative: {key}")
    return np.random.SeedSequence(entropy=base_seed, spawn_key=(key,))


def task_seed(base_seed: int, key: int) -> int:
    """A 31-bit integer seed drawn from the task's seed sequence.

    For components that take a plain integer seed (e.g.
    :class:`~repro.partition.multilevel.BisectionConfig`) rather than a
    generator.
    """
    state = task_seed_sequence(base_seed, key).generate_state(1)
    return int(state[0]) & 0x7FFFFFFF


class TaskHandle:
    """Handle on one asynchronously submitted task.

    The scheduler in :mod:`repro.service` polls these to learn
    per-task liveness without blocking; ``state()`` is one of
    ``"running"``, ``"done"`` or ``"failed"``.

    Attributes:
        task_id: the deterministic id the task was submitted under.
    """

    def __init__(self, task_id: str) -> None:
        self.task_id = task_id

    def done(self) -> bool:
        """Whether the task has finished (successfully or not)."""
        raise NotImplementedError

    def running(self) -> bool:
        """Whether the task is still executing."""
        return not self.done()

    def state(self) -> str:
        """Liveness label: ``running`` / ``done`` / ``failed``."""
        if not self.done():
            return "running"
        return "failed" if self.exception() is not None else "done"

    def result(self) -> Any:
        """The task's return value (blocks; re-raises its exception)."""
        raise NotImplementedError

    def exception(self) -> Optional[BaseException]:
        """The task's exception, or ``None`` (blocks until finished)."""
        raise NotImplementedError


class _CompletedHandle(TaskHandle):
    """An eagerly executed task's handle (the serial backend)."""

    def __init__(self, task_id: str, value: Any = None,
                 error: Optional[BaseException] = None) -> None:
        super().__init__(task_id)
        self._value = value
        self._error = error

    def done(self) -> bool:
        """Always ``True``: serial submission runs inline."""
        return True

    def result(self) -> Any:
        """The captured return value (re-raises a captured error)."""
        if self._error is not None:
            raise self._error
        return self._value

    def exception(self) -> Optional[BaseException]:
        """The captured exception, if the task raised."""
        return self._error


class _FutureHandle(TaskHandle):
    """A pool task's handle, wrapping its ``Future``."""

    def __init__(self, task_id: str, future: "Future[Any]") -> None:
        super().__init__(task_id)
        self._future = future

    def done(self) -> bool:
        """Whether the underlying future has resolved."""
        return self._future.done()

    def result(self) -> Any:
        """Block on the future; re-raises the worker's exception."""
        return self._future.result()

    def exception(self) -> Optional[BaseException]:
        """Block on the future; the worker's exception, if any."""
        return self._future.exception()


class ExecutionBackend:
    """Protocol for running independent picklable tasks.

    Attributes:
        num_workers: parallelism degree the backend was built with.
    """

    num_workers: int = 1

    def __init__(self) -> None:
        self._handles: Dict[str, TaskHandle] = {}
        self._task_counter = 0

    def map(self, fn: Callable[[_T], _R],
            tasks: Iterable[_T]) -> List[_R]:
        """Apply ``fn`` to every task, returning results in task order.

        ``fn`` must be a module-level callable and every task payload
        picklable, so the same call works on any backend.  Results are
        ordered like the input regardless of completion order.
        """
        raise NotImplementedError

    def submit(self, fn: Callable[[_T], _R], task: _T,
               task_id: Optional[str] = None) -> TaskHandle:
        """Dispatch one task asynchronously; returns its handle.

        The same picklability rules as :meth:`map` apply.  On the
        serial backend the task runs inline (the returned handle is
        already done); pool backends return a live handle the caller
        polls.  Handles are retained for :meth:`liveness` until
        :meth:`forget` or :meth:`close`.
        """
        raise NotImplementedError

    def _register(self, handle: TaskHandle) -> TaskHandle:
        self._handles[handle.task_id] = handle
        return handle

    def _next_task_id(self, task_id: Optional[str]) -> str:
        if task_id is not None:
            return task_id
        self._task_counter += 1
        return f"task-{self._task_counter}"

    def liveness(self) -> Dict[str, str]:
        """Per-task liveness of every submitted, unforgotten task.

        Returns:
            ``{task_id: "running" | "done" | "failed"}`` — what the
            service scheduler reports for jobs in flight.
        """
        return {task_id: handle.state()
                for task_id, handle in self._handles.items()}

    def forget(self, task_id: str) -> None:
        """Drop a harvested task's handle from liveness tracking."""
        self._handles.pop(task_id, None)

    def close(self) -> None:
        """Release backend resources (idempotent)."""
        self._handles.clear()

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc: Optional[BaseException],
                 tb: Optional[TracebackType]) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """Runs every task inline, in submission order."""

    num_workers = 1

    def map(self, fn: Callable[[_T], _R],
            tasks: Iterable[_T]) -> List[_R]:
        return [fn(task) for task in tasks]

    def submit(self, fn: Callable[[_T], _R], task: _T,
               task_id: Optional[str] = None) -> TaskHandle:
        """Run the task inline; the returned handle is already done."""
        name = self._next_task_id(task_id)
        try:
            return self._register(_CompletedHandle(name, fn(task)))
        except Exception as exc:
            # captured, not raised: submit() mirrors Future semantics,
            # so the error surfaces at handle.result() like a pool's
            return self._register(_CompletedHandle(name, error=exc))


class ProcessPoolBackend(ExecutionBackend):
    """Fans tasks out over a pool of worker processes.

    The pool is created once and reused across :meth:`map` calls (one
    global-placement run dispatches a batch per bisection level), so
    process start-up is amortized.  ``fork`` is preferred where
    available — workers inherit the loaded modules instead of
    re-importing them.

    Args:
        num_workers: pool size (``>= 2``; use :func:`create_backend`
            to fall back to :class:`SerialBackend` below that).
    """

    def __init__(self, num_workers: int) -> None:
        super().__init__()
        if num_workers < 2:
            raise ValueError("ProcessPoolBackend needs >= 2 workers; "
                             "use SerialBackend (or create_backend) "
                             "for serial execution")
        self.num_workers = int(num_workers)
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None)
        self._executor = ProcessPoolExecutor(
            max_workers=self.num_workers, mp_context=context)

    def map(self, fn: Callable[[_T], _R],
            tasks: Iterable[_T]) -> List[_R]:
        items: Sequence[_T] = list(tasks)
        if not items:
            return []
        # A few chunks per worker balances scheduling freedom against
        # per-task IPC overhead for the many-small-regions levels.
        chunksize = max(1, len(items) // (self.num_workers * 4))
        return list(self._executor.map(fn, items, chunksize=chunksize))

    def submit(self, fn: Callable[[_T], _R], task: _T,
               task_id: Optional[str] = None) -> TaskHandle:
        """Dispatch the task to a pool worker; returns a live handle."""
        name = self._next_task_id(task_id)
        return self._register(
            _FutureHandle(name, self._executor.submit(fn, task)))

    def close(self) -> None:
        self._executor.shutdown(wait=True)
        super().close()


def create_backend(num_workers: Optional[int] = None) -> ExecutionBackend:
    """Build the backend for a resolved worker count.

    Args:
        num_workers: explicit count, or ``0``/``None`` for auto
            (see :func:`resolve_workers`).

    Returns:
        A :class:`SerialBackend` for one worker, else a
        :class:`ProcessPoolBackend`.
    """
    workers = resolve_workers(num_workers)
    if workers <= 1:
        return SerialBackend()
    return ProcessPoolBackend(workers)
