"""Zero-copy task dispatch over ``multiprocessing.shared_memory``.

The PR-5 data plane shipped every :class:`BisectionTask` through pickle:
a few kilobytes of CSR arrays per task, re-serialized for every region
of every bisection level.  At full instance scale that serialization is
the dominant dispatch cost.  This module replaces it with a *batch
arena*: the dispatcher packs one shared-memory segment per task batch
(one bisection level), and what travels through the pool's pickle
channel is a :class:`SegmentRef` — segment name plus item index, about a
hundred bytes — while workers map the arrays read-only, zero-copy, from
the segment.

Segment layout (all offsets 8-byte aligned)::

    [u64 header length n][pickled headers, n bytes][array region ...]

The *headers* are one dict per packed item: scalar fields are stored
verbatim, each array field is replaced by an ``("__array__", offset,
shape, dtype_str)`` descriptor resolved against the array region.  The
descriptor carries the exact source dtype, so a round trip through the
arena is bit-identical to pickling the arrays themselves — parallel
results stay bit-identical to serial at every worker count.

Lifecycle: :class:`SharedArrayPool` owns segment creation and unlinking
on the dispatching side; a batch's segment is unlinked as soon as its
results are collected (attached workers keep it mapped until they move
on — Linux shm is fd-backed, unlink-while-mapped is safe).  On the
worker side :func:`resolve` keeps a single-segment attachment cache:
frontier levels are barriers, so when a ref for a *new* segment arrives
the previous segment can be closed — a worker never holds more than one
batch mapped (plus any whose buffers are still referenced, retired and
reaped once released).

The arena publishes per-*batch* rather than once per run because task
payloads are level-dependent: terminal propagation bakes the current
positions into each region's CSR arrays, so there is no run-constant
CSR superset to share.  What is constant per run is the pool itself and
its naming/accounting.

Falls back cleanly: :func:`available` probes whether the platform can
create segments (some containers mount no ``/dev/shm``); callers keep
the dense pickled path when it cannot.

This module lives in ``repro.parallel`` on purpose: lint rule RPL015
confines ``multiprocessing.shared_memory`` imports here, the same way
RPL011 confines process pools, so segment lifecycle (create / close /
unlink, resource-tracker handling) has exactly one owner.
"""

from __future__ import annotations

import atexit
import pickle
import struct
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = ["PackedBatch", "SegmentRef", "SharedArrayPool", "available",
           "resolve"]

#: Array-field marker inside a packed header dict.
_ARRAY_TAG = "__array__"

#: Alignment of the header/array regions, bytes (covers float64/int64).
_ALIGN = 8

_HEADER_LEN = struct.Struct("<Q")


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


# Resource-tracker note: on Python < 3.13 *attaching* a segment
# registers it with the tracker just like creating one does.  Under the
# fork start method (our pools prefer it) every process shares the
# parent's tracker, whose cache is a set — the workers' duplicate
# registrations collapse onto the creator's entry, and the single
# unregister inside PackedBatch.close()'s unlink() retires it.  An
# explicit per-worker unregister here would *double*-remove and make
# the tracker process print KeyError tracebacks, so workers must not
# unregister what they attach.

_available: Optional[bool] = None


def available() -> bool:
    """Whether this platform can create shared-memory segments.

    Probes once by creating (and immediately unlinking) a minimal
    segment; some sandboxes mount no shm filesystem.  Callers fall
    back to dense pickled dispatch when this is ``False``.
    """
    global _available
    if _available is None:
        try:
            probe = shared_memory.SharedMemory(create=True, size=_ALIGN)
            probe.close()
            probe.unlink()
            _available = True
        except Exception:
            _available = False
    return _available


@dataclass(frozen=True)
class SegmentRef:
    """The entire cross-process payload for one packed item.

    Attributes:
        segment: shared-memory segment name.
        index: item position within the segment's header list.
    """

    segment: str
    index: int


class PackedBatch:
    """One published batch: a segment plus the refs that address it.

    Attributes:
        refs: one :class:`SegmentRef` per packed item, in item order.
        segment_bytes: total segment size, bytes.
        array_bytes: bytes occupied by the array region alone.
    """

    def __init__(self, shm: shared_memory.SharedMemory,
                 refs: List[SegmentRef], array_bytes: int) -> None:
        self._shm: Optional[shared_memory.SharedMemory] = shm
        self.refs = refs
        self.segment_bytes = shm.size
        self.array_bytes = array_bytes

    @property
    def name(self) -> str:
        """Segment name (valid until :meth:`close`)."""
        if self._shm is None:
            raise ValueError("batch already closed")
        return self._shm.name

    def close(self) -> None:
        """Close and unlink the segment (idempotent).

        Safe while workers are still attached: the segment vanishes
        from the namespace but stays mapped wherever it is open.
        """
        shm = self._shm
        if shm is None:
            return
        self._shm = None
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


class SharedArrayPool:
    """Dispatcher-side owner of shared-memory task arenas.

    One pool lives for one placer run.  :meth:`pack` publishes a batch
    of array-bearing task payloads into a fresh segment and returns the
    :class:`PackedBatch` whose tiny refs are what the execution backend
    pickles.  The pool tracks open batches so :meth:`close` can unlink
    anything a crashed level left behind.

    Usage::

        pool = SharedArrayPool()
        try:
            batch = pool.pack(payload_dicts)
            results = backend.map(worker_fn, batch.refs)
            batch.close()
        finally:
            pool.close()
    """

    def __init__(self) -> None:
        self._open: List[PackedBatch] = []
        self._closed = False

    def pack(self, items: Sequence[Mapping[str, Any]]) -> PackedBatch:
        """Publish a batch of payload dicts into one shared segment.

        Args:
            items: payload dicts; :class:`numpy.ndarray` values go to
                the zero-copy array region, everything else must be
                picklable and rides in the header.

        Returns:
            The published batch; call its ``close()`` once every
            result is in.

        Raises:
            ValueError: on an empty batch or a closed pool.
        """
        if self._closed:
            raise ValueError("pool is closed")
        if not items:
            raise ValueError("cannot pack an empty batch")
        headers: List[Dict[str, Any]] = []
        arrays: List[Tuple[int, np.ndarray]] = []  # (offset, source)
        cursor = 0  # within the array region
        for item in items:
            header: Dict[str, Any] = {}
            for key, value in item.items():
                if isinstance(value, np.ndarray):
                    arr = np.ascontiguousarray(value)
                    cursor = _align(cursor)
                    header[key] = (_ARRAY_TAG, cursor, arr.shape,
                                   arr.dtype.str)
                    arrays.append((cursor, arr))
                    cursor += arr.nbytes
                else:
                    header[key] = value
            headers.append(header)
        blob = pickle.dumps(headers, protocol=pickle.HIGHEST_PROTOCOL)
        region = _align(_HEADER_LEN.size + len(blob))
        size = max(_ALIGN, region + cursor)
        shm = shared_memory.SharedMemory(create=True, size=size)
        buf = shm.buf
        _HEADER_LEN.pack_into(buf, 0, len(blob))
        buf[_HEADER_LEN.size:_HEADER_LEN.size + len(blob)] = blob
        for offset, arr in arrays:
            dest = np.ndarray(arr.shape, dtype=arr.dtype, buffer=buf,
                              offset=region + offset)
            dest[...] = arr
        del dest, buf  # release exported views before any close()
        refs = [SegmentRef(shm.name, i) for i in range(len(items))]
        batch = PackedBatch(shm, refs, array_bytes=cursor)
        self._open.append(batch)
        return batch

    def close(self) -> None:
        """Unlink every still-open batch (idempotent)."""
        self._closed = True
        batches, self._open = self._open, []
        for batch in batches:
            batch.close()

    def __enter__(self) -> "SharedArrayPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


# ---------------------------------------------------------------------
# Worker side

#: The one attached segment: (name, shm, parsed headers, array region).
_attached: Optional[Tuple[str, shared_memory.SharedMemory,
                          List[Dict[str, Any]], int]] = None

#: Segments whose buffers were still referenced when superseded; reaped
#: opportunistically once the references die.
_retired: List[shared_memory.SharedMemory] = []


def _reap_retired() -> None:
    still: List[shared_memory.SharedMemory] = []
    for shm in _retired:
        try:
            shm.close()
        except BufferError:
            still.append(shm)
    _retired[:] = still


def _close_attached() -> None:
    global _attached
    if _attached is not None:
        _retired.append(_attached[1])
        _attached = None
    _reap_retired()


atexit.register(_close_attached)


def _attach(name: str) -> Tuple[shared_memory.SharedMemory,
                                List[Dict[str, Any]], int]:
    global _attached
    if _attached is not None and _attached[0] == name:
        return _attached[1], _attached[2], _attached[3]
    _close_attached()
    shm = shared_memory.SharedMemory(name=name)
    (blob_len,) = _HEADER_LEN.unpack_from(shm.buf, 0)
    headers = pickle.loads(
        bytes(shm.buf[_HEADER_LEN.size:_HEADER_LEN.size + blob_len]))
    region = _align(_HEADER_LEN.size + blob_len)
    _attached = (name, shm, headers, region)
    return shm, headers, region


def resolve(ref: SegmentRef) -> Dict[str, Any]:
    """Materialize one packed payload from its segment ref.

    Arrays come back as read-only zero-copy views into the mapped
    segment — valid until the *next* batch's segment is attached in
    this process, which by the frontier-barrier contract is after the
    current task's results have been returned.  Callers needing the
    data past that point must copy.

    Args:
        ref: the payload address produced by
            :meth:`SharedArrayPool.pack`.

    Returns:
        The payload dict with array descriptors resolved to views.
    """
    shm, headers, region = _attach(ref.segment)
    header = headers[ref.index]
    payload: Dict[str, Any] = {}
    for key, value in header.items():
        if (isinstance(value, tuple) and len(value) == 4
                and value[0] == _ARRAY_TAG):
            _, offset, shape, dtype_str = value
            view = np.ndarray(shape, dtype=np.dtype(dtype_str),
                              buffer=shm.buf, offset=region + offset)
            view.flags.writeable = False
            payload[key] = view
        else:
            payload[key] = value
    return payload


def _reset_worker_cache() -> None:
    """Drop the attachment cache (tests; also safe mid-run)."""
    _close_attached()
