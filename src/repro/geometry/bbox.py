"""Axis-aligned 3D bounding boxes for placement regions and nets.

The lateral (x, y) coordinates are continuous and measured in metres.
The vertical (z) coordinate is discrete and measured in *layer indices*:
a box spanning ``zlo=0, zhi=2`` covers active layers 0, 1 and 2.  This
matches how the placer reasons about the third dimension — interlayer
vias are counted per crossed layer boundary, not per metre.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BBox3D:
    """An axis-aligned box: continuous in x/y (metres), discrete in z (layers).

    Attributes:
        xlo, xhi: lateral extent in x, metres, ``xlo <= xhi``.
        ylo, yhi: lateral extent in y, metres, ``ylo <= yhi``.
        zlo, zhi: inclusive layer-index extent, ``zlo <= zhi``.
    """

    xlo: float
    xhi: float
    ylo: float
    yhi: float
    zlo: int
    zhi: int

    def __post_init__(self) -> None:
        if self.xlo > self.xhi:
            raise ValueError(f"xlo ({self.xlo}) > xhi ({self.xhi})")
        if self.ylo > self.yhi:
            raise ValueError(f"ylo ({self.ylo}) > yhi ({self.yhi})")
        if self.zlo > self.zhi:
            raise ValueError(f"zlo ({self.zlo}) > zhi ({self.zhi})")

    @property
    def width(self) -> float:
        """Extent in x, metres."""
        return self.xhi - self.xlo

    @property
    def height(self) -> float:
        """Extent in y, metres."""
        return self.yhi - self.ylo

    @property
    def layers(self) -> int:
        """Number of layers covered (inclusive of both ends)."""
        return self.zhi - self.zlo + 1

    @property
    def layer_span(self) -> int:
        """Number of interlayer boundaries crossed (``zhi - zlo``).

        This is exactly the interlayer-via count of a net whose pins fill
        the box.
        """
        return self.zhi - self.zlo

    @property
    def area(self) -> float:
        """Lateral (footprint) area in square metres."""
        return self.width * self.height

    @property
    def half_perimeter(self) -> float:
        """Lateral half-perimeter ``width + height``, the 2D HPWL of the box."""
        return self.width + self.height

    @property
    def center(self) -> tuple:
        """Geometric centre ``(x, y, z)``; z is a float layer coordinate."""
        return (
            0.5 * (self.xlo + self.xhi),
            0.5 * (self.ylo + self.yhi),
            0.5 * (self.zlo + self.zhi),
        )

    def contains_point(self, x: float, y: float, z: int) -> bool:
        """Whether ``(x, y, z)`` lies inside the box (boundaries inclusive)."""
        return (
            self.xlo <= x <= self.xhi
            and self.ylo <= y <= self.yhi
            and self.zlo <= z <= self.zhi
        )

    def clamp_point(self, x: float, y: float, z: float) -> tuple:
        """Project a point onto the box (nearest point inside it).

        Used by terminal propagation: an external pin is represented by
        the closest location on the region boundary.
        """
        cx = min(max(x, self.xlo), self.xhi)
        cy = min(max(y, self.ylo), self.yhi)
        cz = min(max(z, self.zlo), self.zhi)
        return (cx, cy, cz)

    def intersects(self, other: "BBox3D") -> bool:
        """Whether this box and ``other`` overlap (touching counts)."""
        return (
            self.xlo <= other.xhi
            and other.xlo <= self.xhi
            and self.ylo <= other.yhi
            and other.ylo <= self.yhi
            and self.zlo <= other.zhi
            and other.zlo <= self.zhi
        )

    def union(self, other: "BBox3D") -> "BBox3D":
        """Smallest box containing both boxes."""
        return BBox3D(
            min(self.xlo, other.xlo),
            max(self.xhi, other.xhi),
            min(self.ylo, other.ylo),
            max(self.yhi, other.yhi),
            min(self.zlo, other.zlo),
            max(self.zhi, other.zhi),
        )

    def expand_to(self, x: float, y: float, z: int) -> "BBox3D":
        """Smallest box containing this box and the point."""
        return BBox3D(
            min(self.xlo, x),
            max(self.xhi, x),
            min(self.ylo, y),
            max(self.yhi, y),
            min(self.zlo, z),
            max(self.zhi, z),
        )

    @staticmethod
    def of_points(points) -> "BBox3D":
        """Bounding box of an iterable of ``(x, y, z)`` points.

        Raises:
            ValueError: if ``points`` is empty.
        """
        it = iter(points)
        try:
            x0, y0, z0 = next(it)
        except StopIteration:
            raise ValueError("cannot take the bounding box of zero points")
        xlo = xhi = x0
        ylo = yhi = y0
        zlo = zhi = z0
        for x, y, z in it:
            if x < xlo:
                xlo = x
            elif x > xhi:
                xhi = x
            if y < ylo:
                ylo = y
            elif y > yhi:
                yhi = y
            if z < zlo:
                zlo = z
            elif z > zhi:
                zhi = z
        return BBox3D(xlo, xhi, ylo, yhi, int(zlo), int(zhi))
