"""Uniform 3D density meshes over the placement volume.

Coarse legalization works on a mesh whose bins are roughly two average
cell widths by two average cell heights by one layer (Section 4 of the
paper); detailed legalization uses a finer mesh with bins about the size
of one cell (Section 5).  Both are instances of :class:`DensityMesh`.

Densities are the ratio of cell area assigned to a bin to the bin's
capacity.  Cells are assigned to bins by their centre point — the same
convention the paper's cell-shifting procedure uses when it maps cells to
shifted bin boundaries.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Tuple

import numpy as np

from repro.analysis import FloatArray, IntArray, contract
from repro.geometry.chip import ChipGeometry

if TYPE_CHECKING:
    from repro.netlist.placement import Placement

BinIndex = Tuple[int, int, int]


def axis_bin(coord: float, size: float, count: int) -> int:
    """Floor-based bin index of a coordinate, clamped to the axis.

    Shared by the scalar and vectorized binning paths so both use the
    same convention (``floor``, not int() truncation — the two differ
    for coordinates that stray below zero before clamping).
    """
    return min(max(int(math.floor(coord / size)), 0), count - 1)


def axis_bins(coords: FloatArray, size: float, count: int) -> IntArray:
    """Vectorized :func:`axis_bin` over an array of coordinates."""
    raw = np.floor(coords / size).astype(np.int64)
    return np.clip(raw, 0, count - 1)


class DensityMesh:
    """A uniform mesh of density bins over a :class:`ChipGeometry`.

    Attributes:
        chip: the placement volume being binned.
        nx, ny: number of bins in x and y (per layer).
        nz: number of layers (one bin per layer in z).
        bin_width, bin_height: lateral bin dimensions, metres.
    """

    def __init__(self, chip: ChipGeometry, nx: int, ny: int) -> None:
        if nx < 1 or ny < 1:
            raise ValueError("mesh must have at least one bin per axis")
        self.chip = chip
        self.nx = nx
        self.ny = ny
        self.nz = chip.num_layers
        self.bin_width = chip.width / nx
        self.bin_height = chip.height / ny
        # cell area accumulated per bin
        self._area: FloatArray = np.zeros((nx, ny, self.nz),
                                          dtype=np.float64)
        # ids of cells whose centre lies in each bin
        self._members: Dict[BinIndex, List[int]] = {}

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def coarse_for(chip: ChipGeometry, avg_cell_width: float,
                   avg_cell_height: float) -> "DensityMesh":
        """The coarse-legalization mesh: bins of ~2 cell widths x 2 cell
        heights x 1 layer (Section 4)."""
        nx = max(1, int(round(chip.width / (2.0 * avg_cell_width))))
        ny = max(1, int(round(chip.height / (2.0 * avg_cell_height))))
        return DensityMesh(chip, nx, ny)

    @staticmethod
    def fine_for(chip: ChipGeometry, avg_cell_width: float,
                 avg_cell_height: float) -> "DensityMesh":
        """The detailed-legalization mesh: bins about one average cell in
        size (Section 5)."""
        nx = max(1, int(round(chip.width / avg_cell_width)))
        ny = max(1, int(round(chip.height / avg_cell_height)))
        return DensityMesh(chip, nx, ny)

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def bin_capacity(self) -> float:
        """Placeable area of one bin, square metres."""
        return self.bin_width * self.bin_height

    def bin_of(self, x: float, y: float, z: int) -> BinIndex:
        """Bin index containing the point (clamped to the mesh)."""
        i = axis_bin(x, self.bin_width, self.nx)
        j = axis_bin(y, self.bin_height, self.ny)
        k = min(max(int(z), 0), self.nz - 1)
        return (i, j, k)

    def bin_bounds(self, index: BinIndex) -> Tuple[float, float, float, float]:
        """Lateral bounds ``(xlo, xhi, ylo, yhi)`` of a bin, metres."""
        i, j, _ = index
        self._check_index(index)
        return (i * self.bin_width, (i + 1) * self.bin_width,
                j * self.bin_height, (j + 1) * self.bin_height)

    def bin_center(self, index: BinIndex) -> Tuple[float, float, int]:
        """Centre point ``(x, y, layer)`` of a bin."""
        i, j, k = index
        self._check_index(index)
        return ((i + 0.5) * self.bin_width, (j + 0.5) * self.bin_height, k)

    def neighbors(self, index: BinIndex,
                  include_vertical: bool = True) -> List[BinIndex]:
        """Face-adjacent bins (up to 6)."""
        i, j, k = index
        self._check_index(index)
        out: List[BinIndex] = []
        if i > 0:
            out.append((i - 1, j, k))
        if i < self.nx - 1:
            out.append((i + 1, j, k))
        if j > 0:
            out.append((i, j - 1, k))
        if j < self.ny - 1:
            out.append((i, j + 1, k))
        if include_vertical:
            if k > 0:
                out.append((i, j, k - 1))
            if k < self.nz - 1:
                out.append((i, j, k + 1))
        return out

    def bins_within(self, center: BinIndex, radius: int,
                    include_vertical: bool = True) -> List[BinIndex]:
        """All bins within a Chebyshev ``radius`` of ``center``.

        Used to build target regions for the move/swap procedures.
        """
        ci, cj, ck = center
        self._check_index(center)
        zr = radius if include_vertical else 0
        out: List[BinIndex] = []
        for i in range(max(0, ci - radius), min(self.nx, ci + radius + 1)):
            for j in range(max(0, cj - radius), min(self.ny, cj + radius + 1)):
                for k in range(max(0, ck - zr), min(self.nz, ck + zr + 1)):
                    out.append((i, j, k))
        return out

    def _check_index(self, index: BinIndex) -> None:
        i, j, k = index
        if not (0 <= i < self.nx and 0 <= j < self.ny and 0 <= k < self.nz):
            raise IndexError(f"bin index {index} outside mesh "
                             f"({self.nx} x {self.ny} x {self.nz})")

    # ------------------------------------------------------------------
    # occupancy bookkeeping
    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Remove all recorded cell area."""
        self._area.fill(0.0)
        self._members.clear()

    def add_cell(self, cell_id: int, x: float, y: float, z: int,
                 area: float) -> BinIndex:
        """Record a cell's area in the bin containing its centre."""
        index = self.bin_of(x, y, z)
        self._area[index] += area
        self._members.setdefault(index, []).append(cell_id)
        return index

    def remove_cell(self, cell_id: int, index: BinIndex, area: float) -> None:
        """Remove a previously added cell from a bin."""
        members = self._members.get(index)
        if not members or cell_id not in members:
            raise KeyError(f"cell {cell_id} is not in bin {index}")
        members.remove(cell_id)
        self._area[index] -= area
        if self._area[index] < 0 and self._area[index] > -1e-24:
            self._area[index] = 0.0

    def build(self, positions: Iterable[Tuple[int, float, float, int, float]]
              ) -> None:
        """Populate the mesh from ``(cell_id, x, y, layer, area)`` tuples."""
        self.clear()
        for cell_id, x, y, z, area in positions:
            self.add_cell(cell_id, x, y, z, area)

    @contract(dtypes={"areas": np.floating})
    def build_from_placement(self, placement: "Placement",
                             areas: FloatArray) -> None:
        """Vectorized :meth:`build` over a placement's movable cells.

        Bin indices for every movable cell come from three clipped
        array ops and the per-bin area from one ``np.add.at``; member
        lists are grouped with a stable argsort, so they keep the same
        (netlist) order the scalar build produced.
        """
        self.clear()
        ids = placement.netlist.movable_ids
        if not len(ids):
            return
        i = axis_bins(placement.x[ids], self.bin_width, self.nx)
        j = axis_bins(placement.y[ids], self.bin_height, self.ny)
        k = np.clip(placement.z[ids].astype(np.int64), 0, self.nz - 1)
        np.add.at(self._area, (i, j, k), areas[ids])
        flat = (i * self.ny + j) * self.nz + k
        order = np.argsort(flat, kind="stable")
        flat_sorted = flat[order]
        ids_sorted = ids[order]
        bounds = np.flatnonzero(np.diff(flat_sorted)) + 1
        starts = np.concatenate(([0], bounds))
        ends = np.concatenate((bounds, [len(flat_sorted)]))
        for s, e in zip(starts, ends):
            f = int(flat_sorted[s])
            index = (f // (self.ny * self.nz),
                     (f // self.nz) % self.ny, f % self.nz)
            self._members[index] = ids_sorted[s:e].tolist()

    def members(self, index: BinIndex) -> List[int]:
        """Ids of cells currently assigned to a bin."""
        self._check_index(index)
        return list(self._members.get(index, ()))

    def iter_members(self) -> Iterator[Tuple[BinIndex, List[int]]]:
        """(index, member ids) pairs for every recorded bin.

        The lists are the live internals — callers must not mutate
        them.
        """
        return iter(self._members.items())

    def area_in(self, index: BinIndex) -> float:
        """Cell area currently assigned to a bin, square metres."""
        self._check_index(index)
        return float(self._area[index])

    # ------------------------------------------------------------------
    # densities
    # ------------------------------------------------------------------
    @property
    def densities(self) -> FloatArray:
        """Array of bin densities, shape ``(nx, ny, nz)``.

        Density is cell area divided by bin capacity; 1.0 means exactly
        full.
        """
        return self._area / self.bin_capacity

    def density_of(self, index: BinIndex) -> float:
        """Density of one bin."""
        self._check_index(index)
        return float(self._area[index]) / self.bin_capacity

    @property
    def max_density(self) -> float:
        """The largest bin density on the mesh."""
        return float(self.densities.max())

    def overflow(self, limit: float = 1.0) -> float:
        """Total cell area above ``limit`` x capacity, summed over bins."""
        excess = self._area - limit * self.bin_capacity
        return float(np.clip(excess, 0.0, None).sum())

    def row_densities(self, axis: str, j: int, k: int) -> FloatArray:
        """Densities of one row of bins along ``axis`` ('x', 'y' or 'z').

        For axis 'x' the row is all bins with y-index ``j`` on layer ``k``;
        for 'y' it is all bins with x-index ``j`` on layer ``k``; for 'z'
        it is the vertical stack at lateral index ``(j, k)`` interpreted as
        ``(i, j)``.
        """
        dens = self.densities
        if axis == "x":
            return dens[:, j, k].copy()
        if axis == "y":
            return dens[j, :, k].copy()
        if axis == "z":
            return dens[j, k, :].copy()
        raise ValueError(f"unknown axis {axis!r}")
