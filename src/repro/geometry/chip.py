"""The 3D chip placement volume: die outline, layers, rows and the stack.

A 3D IC in this library is a stack of ``num_layers`` identical active
layers.  Each layer carries horizontal standard-cell rows; cells have a
uniform height equal to the row height and sit side by side within a row.
Between active layers there is a thin bonding/interlayer dielectric, and
below the bottom active layer sits the bulk substrate attached to the heat
sink (the paper's MIT-LL 3D FD-SOI stack, Table 2).

``ChipGeometry`` owns all coordinate conversions:

- continuous y <-> row index,
- continuous/discrete z (layer index) <-> physical height above the heat
  sink, used by the thermal models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

from repro.geometry.bbox import BBox3D


@dataclass(frozen=True)
class Row:
    """One standard-cell row on one layer.

    Attributes:
        layer: active-layer index (0 = closest to the heat sink).
        index: row index within the layer, from y = 0 upward.
        y: y coordinate of the row's lower edge, metres.
        height: cell/row height, metres.
        xlo, xhi: usable x extent of the row, metres.
    """

    layer: int
    index: int
    y: float
    height: float
    xlo: float
    xhi: float

    @property
    def width(self) -> float:
        """Usable row width in metres."""
        return self.xhi - self.xlo


@dataclass
class ChipGeometry:
    """Placement volume of a 3D IC.

    Attributes:
        width: die width (x extent), metres.
        height: die height (y extent), metres.
        num_layers: number of stacked active layers.
        row_height: standard-cell row height, metres.
        row_pitch: vertical distance between row origins, metres
            (``row_height`` plus inter-row space).
        layer_thickness: thickness of one active layer, metres.
        interlayer_thickness: dielectric between adjacent active layers, metres.
        substrate_thickness: bulk substrate below layer 0, metres.
    """

    width: float
    height: float
    num_layers: int
    row_height: float
    row_pitch: float
    layer_thickness: float = 5.7e-6
    interlayer_thickness: float = 0.7e-6
    substrate_thickness: float = 500e-6
    _rows: List[Row] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("die dimensions must be positive")
        if self.num_layers < 1:
            raise ValueError("need at least one active layer")
        if self.row_pitch < self.row_height:
            raise ValueError("row pitch cannot be smaller than row height")
        self._rows = [
            Row(layer=layer, index=i, y=i * self.row_pitch,
                height=self.row_height, xlo=0.0, xhi=self.width)
            for layer in range(self.num_layers)
            for i in range(self.rows_per_layer)
        ]

    # ------------------------------------------------------------------
    # derived dimensions
    # ------------------------------------------------------------------
    @property
    def rows_per_layer(self) -> int:
        """Number of complete rows that fit in the die height."""
        return max(1, int(math.floor(self.height / self.row_pitch + 1e-9)))

    @property
    def bounds(self) -> BBox3D:
        """The full placement volume as a :class:`BBox3D`."""
        return BBox3D(0.0, self.width, 0.0, self.height,
                      0, self.num_layers - 1)

    @property
    def footprint_area(self) -> float:
        """Die footprint area (one layer), square metres."""
        return self.width * self.height

    @property
    def placement_area(self) -> float:
        """Total placeable area across all layers, square metres."""
        return self.footprint_area * self.num_layers

    @property
    def layer_pitch(self) -> float:
        """Vertical distance between corresponding points of adjacent layers."""
        return self.layer_thickness + self.interlayer_thickness

    @property
    def stack_height(self) -> float:
        """Total silicon height from the top of the substrate to the top layer."""
        return (self.num_layers * self.layer_thickness
                + (self.num_layers - 1) * self.interlayer_thickness)

    # ------------------------------------------------------------------
    # coordinate conversions
    # ------------------------------------------------------------------
    def layer_base_height(self, layer: int) -> float:
        """Physical height of the *bottom* of active layer ``layer`` above
        the substrate top, metres."""
        self._check_layer(layer)
        return layer * self.layer_pitch

    def layer_center_height(self, layer: int) -> float:
        """Physical height of the mid-plane of active layer ``layer`` above
        the substrate top, metres.

        This is the ``d_j^z`` of the paper's thermal-resistance profile
        ``R_j^cell ~ R0^z + Rslope^z * d_j^z``.
        """
        return self.layer_base_height(layer) + 0.5 * self.layer_thickness

    def distance_to_heat_sink(self, layer: int) -> float:
        """Conduction path length from the mid-plane of ``layer`` down to
        the heat-sink face (bottom of the substrate), metres."""
        return self.layer_center_height(layer) + self.substrate_thickness

    def row_of_y(self, y: float, layer: int = 0) -> Row:
        """Row whose span contains (or is nearest to) the y coordinate."""
        idx = int(math.floor(y / self.row_pitch))
        idx = min(max(idx, 0), self.rows_per_layer - 1)
        return self.row(layer, idx)

    def row(self, layer: int, index: int) -> Row:
        """Row ``index`` on ``layer``."""
        self._check_layer(layer)
        if not 0 <= index < self.rows_per_layer:
            raise IndexError(f"row index {index} out of range "
                             f"[0, {self.rows_per_layer})")
        return self._rows[layer * self.rows_per_layer + index]

    def rows_on_layer(self, layer: int) -> List[Row]:
        """All rows on one layer, bottom to top."""
        self._check_layer(layer)
        start = layer * self.rows_per_layer
        return self._rows[start:start + self.rows_per_layer]

    def snap_y_to_row(self, y: float) -> float:
        """y coordinate of the origin of the row nearest to ``y``."""
        idx = int(round(y / self.row_pitch))
        idx = min(max(idx, 0), self.rows_per_layer - 1)
        return idx * self.row_pitch

    def clamp_layer(self, z: float) -> int:
        """Round a continuous layer coordinate to the nearest valid layer."""
        return min(max(int(round(z)), 0), self.num_layers - 1)

    def _check_layer(self, layer: int) -> None:
        if not 0 <= layer < self.num_layers:
            raise IndexError(
                f"layer {layer} out of range [0, {self.num_layers})")

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def for_cell_area(total_cell_area: float, num_layers: int,
                      row_height: float, whitespace: float = 0.05,
                      inter_row_space: float = 0.25,
                      aspect_ratio: float = 1.0,
                      min_row_width: float = 0.0,
                      layer_thickness: float = 5.7e-6,
                      interlayer_thickness: float = 0.7e-6,
                      substrate_thickness: float = 500e-6) -> "ChipGeometry":
        """Size a die for a given total standard-cell area.

        The die is sized so that the *row* area (excluding inter-row space)
        per layer equals ``total_cell_area / num_layers / (1 - whitespace)``,
        mirroring the paper's 5% whitespace and 25% inter-row spacing
        (Table 2).

        Args:
            total_cell_area: sum of all cell footprints, square metres.
            num_layers: number of active layers.
            row_height: standard-cell height, metres.
            whitespace: fraction of row area left unfilled (0 <= w < 1).
            inter_row_space: inter-row gap as a fraction of row height.
            aspect_ratio: die width / height.
            min_row_width: widen the die (raising the aspect ratio) so
                rows are at least this long, metres.  Downscaled
                benchmark instances would otherwise end up with rows a
                handful of cells long, where the whitespace per row is
                less than one cell width and legalization has no room to
                manoeuvre — an artefact full-size circuits do not have.

        Returns:
            A :class:`ChipGeometry` whose rows can legally hold the cells.
        """
        if not 0 <= whitespace < 1:
            raise ValueError("whitespace must be in [0, 1)")
        if total_cell_area <= 0:
            raise ValueError("total cell area must be positive")
        row_area_per_layer = total_cell_area / num_layers / (1.0 - whitespace)
        # Rows occupy 1/(1+inter_row_space) of the die height.
        die_area_per_layer = row_area_per_layer * (1.0 + inter_row_space)
        if min_row_width > 0:
            needed = min_row_width ** 2 / die_area_per_layer
            aspect_ratio = max(aspect_ratio, needed)
        height = math.sqrt(die_area_per_layer / aspect_ratio)
        width = die_area_per_layer / height
        row_pitch = row_height * (1.0 + inter_row_space)
        # Round height up to a whole number of row pitches so no capacity
        # is lost to a partial top row (die area is conserved, so total
        # row capacity is unchanged either way).
        n_rows = max(1, int(math.ceil(height / row_pitch - 1e-9)))
        if min_row_width > 0:
            # rounding up may have narrowed the die below the requested
            # row length; drop rows until it fits again
            while n_rows > 1 and (die_area_per_layer
                                  / (n_rows * row_pitch)) < min_row_width:
                n_rows -= 1
        height = n_rows * row_pitch
        width = die_area_per_layer / height
        return ChipGeometry(
            width=width, height=height, num_layers=num_layers,
            row_height=row_height, row_pitch=row_pitch,
            layer_thickness=layer_thickness,
            interlayer_thickness=interlayer_thickness,
            substrate_thickness=substrate_thickness)
