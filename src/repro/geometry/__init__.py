"""Geometric primitives for 3D-IC placement.

This subpackage provides the spatial substrate every other part of the
placer builds on:

- :class:`~repro.geometry.bbox.BBox3D` — axis-aligned boxes with lateral
  dimensions in metres and the vertical dimension in discrete layers.
- :class:`~repro.geometry.chip.ChipGeometry` — the placement volume of a
  3D IC: die outline, active layers, standard-cell rows and vertical stack
  dimensions (layer / interlayer / substrate thicknesses).
- :class:`~repro.geometry.density.DensityMesh` — a 3D mesh of density bins
  used by coarse legalization (cell shifting, move/swap target regions)
  and by the thermal solver.
"""

from repro.geometry.bbox import BBox3D
from repro.geometry.chip import ChipGeometry, Row
from repro.geometry.density import DensityMesh

__all__ = ["BBox3D", "ChipGeometry", "Row", "DensityMesh"]
