"""Thermal-resistance-reduction nets (Section 3.2, Eqs. 9-15).

A TRR net is a virtual two-pin net from a cell to a point on the bottom
of the chip directly below it.  During z-direction partitioning it pulls
the cell toward the heat sink with a force proportional to the cell's
power and the chip's vertical resistance slope:

    nw_j^cell = a_TEMP * P_j^cell * Rslope^z                  (Eq. 12)

``P_j^cell`` (Eq. 10) depends on the wirelength/via counts of the nets
the cell drives — which are all zero while every cell still sits at the
chip centre.  The paper floors them at PEKO-style *optimal* values
(Eqs. 13-15), computed here by
:meth:`repro.thermal.power.PowerModel.peko_optimal`.

In this library the TRR net is represented as a degree-1 net flagged
``is_trr`` (the bottom anchor is implicit: it tracks the cell laterally,
so only the z direction ever feels it), and its weight is recomputed
from the evolving placement by :func:`compute_trr_weights`.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.config import PlacementConfig
from repro.metrics.wirelength import NetMetrics, compute_net_metrics
from repro.netlist.net import PinRole
from repro.netlist.netlist import Netlist
from repro.netlist.placement import Placement
from repro.thermal.power import PowerModel
from repro.thermal.resistance import ResistanceModel, VerticalProfile

#: Name prefix of generated TRR nets.
TRR_PREFIX = "__trr__"


def add_trr_nets(netlist: Netlist) -> Dict[int, int]:
    """Add one TRR net per movable cell (idempotent).

    Returns:
        Mapping from cell id to its TRR net id.
    """
    existing: Dict[int, int] = {}
    for net in netlist.nets:
        if net.is_trr:
            existing[net.pins[0][0]] = net.id
    mapping: Dict[int, int] = {}
    for cell in netlist.cells:
        if not cell.movable:
            continue
        if cell.id in existing:
            mapping[cell.id] = existing[cell.id]
            continue
        net = netlist.add_net(f"{TRR_PREFIX}{cell.name}",
                              [(cell.id, PinRole.SINK)],
                              activity=0.0, is_trr=True)
        mapping[cell.id] = net.id
    return mapping


def compute_trr_weights(placement: Placement, config: PlacementConfig,
                        power_model: PowerModel,
                        profile: Optional[VerticalProfile] = None,
                        metrics: Optional[NetMetrics] = None
                        ) -> np.ndarray:
    """Per-cell TRR net weights (Eq. 12) at the current placement.

    Cell powers use the PEKO-3D floors, so the weights are meaningful
    even at the very first bisection when all geometry is still zero.

    Returns:
        Array indexed by cell id; zero when TRR nets are disabled.
    """
    n = placement.netlist.num_cells
    if config.alpha_temp <= 0 or not config.use_trr_nets:
        return np.zeros(n)
    if profile is None:
        rm = ResistanceModel(placement.chip, config.tech)
        profile = rm.vertical_profile(
            area=placement.netlist.total_cell_area
            / max(placement.netlist.num_movable, 1))
    if metrics is None:
        metrics = compute_net_metrics(placement)
    floors = power_model.peko_optimal(config.alpha_ilv)
    powers = power_model.cell_powers(metrics, floors=floors)
    return config.alpha_temp * powers * profile.slope
