"""Row-aware cell shifting (Section 4.1, Figures 1-2, Eqs. 16-17).

Cell shifting spreads cells by moving density-bin boundaries: congested
bins widen, sparse bins narrow, and cells are remapped linearly into the
new bin extents.  The paper identifies two failure modes of FastPlace's
original two-adjacent-bins formulation and fixes both by considering the
whole row of bins at once:

1. **Boundary cross-over** — our new widths are always positive and the
   boundaries are their cumulative sums, so they cannot get out of
   order, preserving relative cell order.
2. **Needless spreading** — sparse bins contract only by exactly as
   much as the congested bins *in the same row* need to expand (scaled
   to match on both sides); a row with no congestion is left untouched.

The width response to density follows Figure 2:

    W'/W = a_lower * (d - 1) + b          for d <= 1
    W'/W = a_upper * (1 - 1/d) + b        for d > 1

and the per-row balancing plays the role of "adjusting a_lower, a_upper
and b so that expansions are balanced with contractions".

Cells are remapped with Eq. 17, blended by a per-cell movement-retention
factor ``beta`` picked per cell from a small candidate set to minimize
objective degradation (never zero, so spreading always progresses).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis import FloatArray, IntArray
from repro.core.config import PlacementConfig
from repro.core.objective import ObjectiveState
from repro.geometry.density import DensityMesh
from repro.obs import get_recorder

#: Movement-retention candidates tried per cell (Eq. 17's beta).
BETA_CANDIDATES = (1.0, 0.5, 0.25)


def shifted_widths(densities: Sequence[float], width: float,
                   a_lower: float, a_upper: float, b: float,
                   min_width_factor: float = 0.1) -> FloatArray:
    """New widths of one row of bins (the core of Eq. 16).

    Expansion demanded by congested bins is matched exactly by
    contraction of sparse bins in the same row (whichever side offers
    less scales the other down), so the row's total width is conserved
    and rows without congestion do not move at all.

    Args:
        densities: current bin densities along the row.
        width: current (uniform) bin width.
        a_lower, a_upper, b: the Figure 2 response parameters.
        min_width_factor: bins never shrink below this fraction of
            their old width (guarantees strictly positive widths, hence
            no boundary cross-over).

    Returns:
        Array of new bin widths summing to ``len(densities) * width``.
    """
    d = np.asarray(densities, dtype=np.float64)
    n = len(d)
    congested = d > 1.0
    if not congested.any():
        return np.full(n, width, dtype=np.float64)
    factor = np.where(congested,
                      a_upper * (1.0 - 1.0 / np.maximum(d, 1e-12)) + b,
                      a_lower * (d - 1.0) + b)
    factor = np.clip(factor, min_width_factor, None)
    expansion = np.where(congested & (factor > 1.0),
                         (factor - 1.0) * width, 0.0)
    contraction = np.where(~congested & (factor < 1.0),
                           (1.0 - factor) * width, 0.0)
    need = float(expansion.sum())
    available = float(contraction.sum())
    if need <= 0.0 or available <= 0.0:
        return np.full(n, width, dtype=np.float64)
    matched = min(need, available)
    new = np.full(n, width, dtype=np.float64)
    new += expansion * (matched / need)
    new -= contraction * (matched / available)
    return new


class CellShifter:
    """Iterative cell shifting over a coarse density mesh.

    Args:
        objective: the shared incremental objective; all cell movement
            flows through it so its caches stay valid.
        config: placement configuration (Figure 2 parameters, density
            target, iteration cap).
        mesh: coarse mesh; built internally if omitted.
    """

    def __init__(self, objective: ObjectiveState, config: PlacementConfig,
                 mesh: Optional[DensityMesh] = None) -> None:
        self.objective = objective
        self.config = config
        # movement-retention override; None = per-cell greedy candidates
        self._fixed_beta: Optional[float] = None
        placement = objective.placement
        netlist = placement.netlist
        self.mesh = mesh or DensityMesh.coarse_for(
            placement.chip, netlist.average_cell_width,
            netlist.average_cell_height)

    # ------------------------------------------------------------------
    def run(self, max_iterations: Optional[int] = None) -> int:
        """Shift until the max bin density reaches the target.

        Returns:
            The number of iterations executed.
        """
        config = self.config
        rec = get_recorder()
        limit = (config.shift_max_iterations if max_iterations is None
                 else max_iterations)
        iterations = 0
        self._fixed_beta = None
        placement = self.objective.placement
        best_overflow: Optional[float] = None
        best_state: Optional[Tuple[FloatArray, FloatArray,
                                   IntArray]] = None
        stalled = 0
        for _ in range(limit):
            self._rebuild_mesh()
            if rec.enabled:
                rec.record("cellshift/iteration",
                           iteration=float(iterations),
                           max_density=float(self.mesh.max_density),
                           overflow=float(self.mesh.overflow(
                               config.shift_max_density)))
            if self.mesh.max_density <= config.shift_max_density:
                best_state = None  # current state is the one to keep
                break
            overflow = self.mesh.overflow(config.shift_max_density)
            if best_overflow is None or overflow < 0.98 * best_overflow:
                stalled = 0
            else:
                stalled += 1
                if self._fixed_beta is None:
                    rec.count("cellshift/stall_fallbacks")
                    # Objective-greedy movement retention is stalling
                    # the spread; switch to a fixed damped step (the
                    # paper's beta is "dynamically adjusted" —
                    # convergence outranks quality here, and the
                    # move/swap passes recover quality).
                    self._fixed_beta = 0.5
                elif stalled >= 3:
                    # Damped steps no longer help either: the residue is
                    # irreducible by shifting (e.g. cells wider than a
                    # bin, whose centre-binned density cannot drop below
                    # their own footprint).  Detailed legalization
                    # absorbs what remains.
                    break
            if best_overflow is None or overflow < best_overflow:
                best_overflow = overflow
                best_state = (placement.x.copy(), placement.y.copy(),
                              placement.z.copy())
            # z first: layer moves land cells in laterally dense spots,
            # which the x/y passes of the same iteration then spread
            for axis in ("z", "x", "y"):
                self._shift_axis(axis)
                self._rebuild_mesh()
            iterations += 1
        self._fixed_beta = None
        if best_state is not None:
            # keep whichever of {final state, best snapshot} overflows
            # less
            self._rebuild_mesh()
            final = self.mesh.overflow(config.shift_max_density)
            assert best_overflow is not None
            if final > best_overflow:
                self._restore(best_state)
        if rec.enabled:
            rec.count("cellshift/total_iterations", float(iterations))
            rec.gauge("cellshift/final_max_density",
                      float(self.mesh.max_density))
        return iterations

    def _restore(self, state: Tuple[FloatArray, FloatArray, IntArray]
                 ) -> None:
        """Move cells back to a snapshotted (better) configuration,
        keeping the objective caches in sync."""
        xs, ys, zs = state
        placement = self.objective.placement
        moves: List[Tuple[int, float, float, int]] = []
        for cid, x, y, z in placement.iter_movable():
            if (x != xs[cid] or y != ys[cid] or z != zs[cid]):
                moves.append((cid, float(xs[cid]), float(ys[cid]),
                              int(zs[cid])))
        if moves:
            self.objective.apply_moves(moves)

    def _rebuild_mesh(self) -> None:
        placement = self.objective.placement
        self.mesh.build_from_placement(placement,
                                       placement.netlist.areas)

    # ------------------------------------------------------------------
    def _shift_axis(self, axis: str) -> None:
        """Shift every row along one axis.

        All rows' beta candidates are scored against the axis-entry
        state in one batched objective call and the chosen moves are
        committed as one joint apply — each cell belongs to exactly one
        row, so the candidates are disjoint and the per-apply
        bookkeeping runs once per axis instead of once per row.
        """
        mesh = self.mesh
        if axis == "x":
            rows = [(j, k) for k in range(mesh.nz)
                    for j in range(mesh.ny)]
        elif axis == "y":
            rows = [(i, k) for k in range(mesh.nz)
                    for i in range(mesh.nx)]
        else:
            if mesh.nz < 2:
                return
            rows = [(i, j) for j in range(mesh.ny)
                    for i in range(mesh.nx)]
        lift_cost = self._lift_costs() if axis == "z" else None
        spans: List[Tuple[int, int]] = []
        moves: List[Tuple[int, float, float, int]] = []
        for a, b in rows:
            self._shift_row(axis, a, b, spans, moves, lift_cost)
        if not moves:
            return
        deltas = self.objective.eval_moves_batch(
            [m[0] for m in moves], [m[1] for m in moves],
            [m[2] for m in moves], [m[3] for m in moves])
        chosen = [moves[lo + int(np.argmin(deltas[lo:hi]))]
                  for lo, hi in spans]
        self.objective.apply_moves(chosen)

    def _lift_costs(self) -> Dict[int, float]:
        """Objective delta of lifting each movable cell one layer up,
        for the z-axis virtual ordering — one batched call per pass."""
        placement = self.objective.placement
        chip = placement.chip
        cells: List[int] = []
        xs: List[float] = []
        ys: List[float] = []
        zs: List[int] = []
        for cid, x, y, z in placement.iter_movable():
            if int(z) + 1 < chip.num_layers:
                cells.append(cid)
                xs.append(float(x))
                ys.append(float(y))
                zs.append(int(z) + 1)
        deltas = self.objective.eval_moves_batch(cells, xs, ys, zs)
        return {cid: float(d) for cid, d in zip(cells, deltas)}

    def _row_geometry(self, axis: str) -> Tuple[int, float]:
        mesh = self.mesh
        if axis == "x":
            return mesh.nx, mesh.bin_width
        if axis == "y":
            return mesh.ny, mesh.bin_height
        return mesh.nz, 1.0  # z rows are measured in layer units

    def _shift_row(self, axis: str, a: int, b: int,
                   spans: List[Tuple[int, int]],
                   moves: List[Tuple[int, float, float, int]],
                   lift_cost: Optional[Dict[int, float]]) -> None:
        """Collect one row's shifted-remap candidates (Eqs. 16-17).

        Appends each cell's beta-candidate moves to the axis-wide batch
        lists; :meth:`_shift_axis` scores and applies them jointly.
        """
        mesh = self.mesh
        config = self.config
        n_bins, width = self._row_geometry(axis)
        if n_bins < 2:
            return
        densities = mesh.row_densities(axis, a, b)
        new_widths = shifted_widths(
            densities, width, config.shift_lower_slope,
            config.shift_upper_slope, config.shift_intercept)
        if np.allclose(new_widths, width):
            return
        old_bounds = np.arange(n_bins + 1, dtype=np.float64) * width
        new_bounds = np.concatenate(([0.0], np.cumsum(new_widths)))

        for i in range(n_bins):
            index = self._bin_index(axis, i, a, b)
            members = mesh.members(index)
            if not members:
                continue
            coords = self._member_coords(axis, i, members, lift_cost)
            for cid, coord in zip(members, coords):
                mapped = (new_widths[i] / width * (coord - old_bounds[i])
                          + new_bounds[i])
                cand = self._candidate_moves(axis, cid, coord, mapped)
                if cand:
                    spans.append((len(moves), len(moves) + len(cand)))
                    moves.extend(cand)

    def _member_coords(self, axis: str, bin_i: int,
                       members: Sequence[int],
                       lift_cost: Optional[Dict[int, float]]
                       ) -> List[float]:
        """Coordinates of a bin's cells along the shifting axis.

        For x and y these are the cells' true coordinates.  The z
        coordinate is discrete — every cell of a layer sits at exactly
        the same z, so Eq. 17's linear remap could never split a layer.
        Cells therefore get *virtual* coordinates spread across the
        layer's unit interval, ordered so that the cells cheapest to
        move upward (by the objective, i.e. low-power cells under
        thermal placement) occupy the top of the interval and are the
        first to spill into the next layer when the bin expands.
        Top-layer cells cannot move up and sort as infinitely costly.
        """
        if axis != "z":
            return [self._cell_coord(axis, cid) for cid in members]
        assert lift_cost is not None, "z shifting requires lift costs"
        costs = lift_cost
        inf = float("inf")
        order = sorted(members, key=lambda cid: costs.get(cid, inf),
                       reverse=True)
        n = len(order)
        rank_of = {cid: r for r, cid in enumerate(order)}
        return [bin_i + (rank_of[cid] + 0.5) / n for cid in members]

    @staticmethod
    def _bin_index(axis: str, i: int, a: int, b: int
                   ) -> Tuple[int, int, int]:
        if axis == "x":
            return (i, a, b)
        if axis == "y":
            return (a, i, b)
        return (a, b, i)

    def _cell_coord(self, axis: str, cid: int) -> float:
        placement = self.objective.placement
        if axis == "x":
            return float(placement.x[cid])
        if axis == "y":
            return float(placement.y[cid])
        return float(placement.z[cid]) + 0.5  # layer centre in layer units

    # ------------------------------------------------------------------
    def _candidate_moves(self, axis: str, cid: int, old: float,
                         target: float
                         ) -> List[Tuple[int, float, float, int]]:
        """Eq. 17's beta candidates for one cell, as move tuples.

        The caller batches these across a whole row of bins; ties go to
        the earliest (largest) beta via first-occurrence ``argmin``.
        """
        placement = self.objective.placement
        chip = placement.chip
        fixed = self._fixed_beta
        candidates = BETA_CANDIDATES if fixed is None else (fixed,)
        moves: List[Tuple[int, float, float, int]] = []
        for beta in candidates:
            coord = beta * target + (1.0 - beta) * old
            if axis == "x":
                x = min(max(coord, 0.0), chip.width)
                move = (cid, x, float(placement.y[cid]),
                        int(placement.z[cid]))
            elif axis == "y":
                y = min(max(coord, 0.0), chip.height)
                move = (cid, float(placement.x[cid]), y,
                        int(placement.z[cid]))
            else:
                layer = chip.clamp_layer(coord - 0.5)
                if layer == int(placement.z[cid]):
                    continue
                move = (cid, float(placement.x[cid]),
                        float(placement.y[cid]), layer)
            moves.append(move)
        return moves
