"""Shared state the pipeline stages operate on.

A :class:`PlacementContext` bundles everything one placement run owns:
the netlist (with TRR-net injection applied exactly once, owned here
rather than by whichever stage happens to run first), the chip volume,
the coordinate arrays, the power model, the lazily built incremental
:class:`~repro.core.objective.ObjectiveState`, a seeded RNG stream and
the telemetry recorder.  Stages receive the context and nothing else,
so any stage composition the :class:`~repro.core.pipeline.PipelineSpec`
describes runs against the same state without hidden coupling.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

import numpy as np

from repro.core.config import PlacementConfig
from repro.core.objective import ObjectiveState
from repro.core.trrnets import add_trr_nets
from repro.geometry.chip import ChipGeometry
from repro.netlist.netlist import Netlist
from repro.netlist.placement import Placement
from repro.obs import NULL_RECORDER, Recorder, get_logger
from repro.thermal.power import PowerModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.thermal.fidelity import ThermalFidelityPolicy
    # lint: ok[RPL012] type-only; the context owns the fidelity policy
    from repro.thermal.solver import TemperatureField

__all__ = ["PlacementContext", "auto_chip"]

_log = get_logger(__name__)


def auto_chip(netlist: Netlist, config: PlacementConfig) -> ChipGeometry:
    """Size the placement volume from cell area and the config knobs.

    The single source of the sizing policy previously duplicated by
    ``Placer3D`` and the baseline placers.
    """
    return ChipGeometry.for_cell_area(
        netlist.total_cell_area, config.num_layers,
        netlist.average_cell_height,
        whitespace=config.tech.whitespace,
        inter_row_space=config.tech.inter_row_space,
        min_row_width=24.0 * netlist.average_cell_width,
        layer_thickness=config.tech.layer_thickness,
        interlayer_thickness=config.tech.interlayer_thickness,
        substrate_thickness=config.tech.substrate_thickness)


class PlacementContext:
    """Everything one placement run reads and mutates.

    Build one with :meth:`create` (which applies the run's netlist
    preparation) rather than the constructor.

    Attributes:
        netlist: the circuit being placed, TRR nets included when
            thermal placement is enabled.
        config: the placement configuration.
        chip: the placement volume.
        placement: the evolving coordinate arrays.
        power_model: netlist-bound power attribution (Eq. 10).
        recorder: the run's telemetry recorder (never ``None``; the
            shared null recorder when telemetry is off).
        rng: the context-owned seeded generator stream.  Stages that
            need randomness beyond their historical per-stage seeds
            draw from it; its state is serialized into checkpoints so
            resumed runs continue the same stream.
        trr_net_ids: cell id -> TRR net id for the injected nets
            (empty when thermal placement is off).
    """

    def __init__(self, netlist: Netlist, config: PlacementConfig,
                 chip: ChipGeometry, placement: Placement,
                 power_model: PowerModel,
                 recorder: Recorder = NULL_RECORDER,
                 trr_net_ids: Optional[Dict[int, int]] = None) -> None:
        self.netlist = netlist
        self.config = config
        self.chip = chip
        self.placement = placement
        self.power_model = power_model
        self.recorder = recorder
        self.rng = np.random.default_rng(config.seed)
        self.trr_net_ids: Dict[int, int] = dict(trr_net_ids or {})
        self._objective: Optional[ObjectiveState] = None
        self._thermal_policy: Optional["ThermalFidelityPolicy"] = None

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, netlist: Netlist, config: PlacementConfig,
               chip: Optional[ChipGeometry] = None,
               recorder: Recorder = NULL_RECORDER) -> "PlacementContext":
        """Prepare a fresh run: inject TRR nets, start cells centred.

        TRR-net injection is idempotent (``add_trr_nets`` reuses nets
        that already exist), so creating any number of contexts over
        one netlist — or re-running one placer — never duplicates them.
        """
        if chip is None:
            chip = auto_chip(netlist, config)
        elif chip.num_layers != config.num_layers:
            raise ValueError("chip layer count disagrees with config")
        trr_ids: Dict[int, int] = {}
        if config.thermal_enabled and config.use_trr_nets:
            trr_ids = add_trr_nets(netlist)
        placement = Placement.at_center(netlist, chip)
        power_model = PowerModel(netlist, config.tech)
        return cls(netlist, config, chip, placement, power_model,
                   recorder=recorder, trr_net_ids=trr_ids)

    # ------------------------------------------------------------------
    @property
    def objective_built(self) -> bool:
        """Whether the incremental objective state exists yet."""
        return self._objective is not None

    @property
    def objective(self) -> ObjectiveState:
        """The incremental objective, built on first access."""
        return self.ensure_objective()

    def ensure_objective(self) -> ObjectiveState:
        """Build the objective state if needed; return it.

        The build runs under an ``objective_build`` span at whatever
        point of the pipeline first needs it — for the default spec
        that is right after global placement, before the first
        coarse+detailed round, matching the historical span layout.
        """
        if self._objective is None:
            with self.recorder.span("objective_build"):
                self._objective = ObjectiveState(
                    self.placement, self.config, self.power_model)
            _log.info("objective state built: objective %.6e",
                      self._objective.total)
        return self._objective

    def invalidate_objective(self) -> None:
        """Drop the objective state (a stage replaced the placement
        wholesale and the caches must be rebuilt on next access)."""
        self._objective = None

    # ------------------------------------------------------------------
    @property
    def thermal_policy_built(self) -> bool:
        """Whether the fidelity policy exists yet (it is lazy, so a
        run that never evaluates a temperature field never builds
        one)."""
        return self._thermal_policy is not None

    @property
    def thermal_policy(self) -> "ThermalFidelityPolicy":
        """The run's thermal fidelity policy, built on first access.

        Stages and the pipeline route every temperature-field
        evaluation through this policy — never through a directly
        instantiated :class:`~repro.thermal.solver.ThermalSolver`
        (enforced by lint rule RPL012) — so the ``thermal_fidelity``
        config knob governs all of them.
        """
        if self._thermal_policy is None:
            from repro.thermal.fidelity import ThermalFidelityPolicy
            self._thermal_policy = ThermalFidelityPolicy(
                self.chip, self.config.tech,
                mode=self.config.thermal_fidelity,
                drift_tolerance=self.config.thermal_drift_tolerance)
        return self._thermal_policy

    def record_thermal(self, boundary: bool = False
                       ) -> Optional["TemperatureField"]:
        """Evaluate the temperature field under the fidelity policy.

        Called by the pipeline after inner-loop stages (``boundary
        False`` — served by the surrogate under ``adaptive``) and at
        round boundaries (``boundary True`` — exact, with drift
        detection).  Records the field's peak into the ``thermal/peak``
        gauge.  A no-op returning ``None`` when thermal placement is
        disabled, keeping non-thermal runs at their historical cost.
        """
        if not self.config.thermal_enabled:
            return None
        objective = self.ensure_objective()
        field = self.thermal_policy.evaluate(
            self.placement, objective.cell_powers(), boundary=boundary)
        self.recorder.gauge("thermal/peak", field.max_temperature)
        return field

    # ------------------------------------------------------------------
    def rng_state(self) -> Dict[str, Any]:
        """JSON-safe snapshot of the context RNG stream."""
        state = self.rng.bit_generator.state
        assert isinstance(state, dict)
        return state

    def set_rng_state(self, state: Dict[str, Any]) -> None:
        """Restore the context RNG stream from :meth:`rng_state`."""
        self.rng.bit_generator.state = state
