"""Placement configuration: objective coefficients and effort knobs."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping

from repro.technology import TechnologyConfig

__all__ = ["PlacementConfig", "THERMAL_FIDELITY_MODES"]

#: Legal values of :attr:`PlacementConfig.thermal_fidelity`.  Lives
#: here (not in :mod:`repro.thermal.fidelity`) so config validation
#: needs no thermal imports; the policy module re-exports it.
THERMAL_FIDELITY_MODES = ("exact", "surrogate", "adaptive")


@dataclass
class PlacementConfig:
    """All knobs of the 3D placement flow.

    The two coefficients that define the paper's tradeoff space:

    Attributes:
        alpha_ilv: interlayer-via coefficient (metres of wirelength one
            via is worth, Eq. 1).  The paper sweeps 5e-9 .. 5.2e-3,
            centred around the average cell width (~1e-5).
        alpha_temp: thermal coefficient (Eq. 1).  0 disables thermal
            placement; the paper sweeps up to ~5e-3.
        num_layers: active layers in the stack.

    Thermal-mechanism toggles (for ablations):
        use_thermal_net_weights: apply Eq. 8 net weights in partitioning.
        use_trr_nets: add thermal-resistance-reduction nets (Eq. 12).
        thermal_fidelity: which solver computes temperature *fields*
            (``exact`` | ``surrogate`` | ``adaptive``; see
            :mod:`repro.thermal.fidelity`).  Trajectory-neutral: the
            Eq. 3 objective and the final placement are identical in
            every mode, so this is an execution-only knob (excluded
            from the scientific config hash, like ``num_workers``).
        thermal_drift_tolerance: relative surrogate-vs-exact error at
            a stage boundary above which ``adaptive`` recalibrates
            the surrogate (and logs a telemetry event).

    Global placement:
        min_region_cells: stop recursing below this many cells.
        partition_starts: random starts per bisection (effort knob;
            Section 7 reports 3.8% improvement at 3.4x runtime from
            raising effort).
        partition_passes: FM passes per refinement level.
        min_partition_tolerance: floor on the whitespace-derived balance
            tolerance.

    Coarse legalization:
        shift_max_density: cell shifting iterates until the coarse mesh's
            max density drops below this ("a desired value close to one").
        shift_max_iterations: hard cap on shifting iterations.
        shift_upper_slope / shift_lower_slope / shift_intercept: the
            ``a_upper`` / ``a_lower`` / ``b`` parameters of the width vs
            density response (Figure 2).
        move_target_bins: bins in a global move/swap target region.
        move_passes: global+local move/swap passes.
        legalization_rounds: how many times coarse+detailed legalization
            repeat (Section 7: 10 rounds gave 7.7% improvement at 65x
            runtime).
        refine_passes: legality-preserving post-optimization passes
            after detailed legalization (Section 4's "post-optimization
            phase"); 0 disables.

    Execution:
        num_workers: parallelism degree of the execution backend used
            by the embarrassingly-parallel hot paths (per-level
            recursive-bisection regions; see :mod:`repro.parallel`).
            ``0`` means auto — honour the ``REPRO_WORKERS``
            environment variable, else run serially.  Results are
            bit-identical for every worker count; this knob trades
            wall time for cores only, so it is excluded from the
            scientific config hash manifests and checkpoints pin.

    Misc:
        seed: every random choice flows from this.
        tech: technology / process parameters (Table 2).
    """

    alpha_ilv: float = 1e-5
    alpha_temp: float = 0.0
    num_layers: int = 4
    use_thermal_net_weights: bool = True
    use_trr_nets: bool = True
    thermal_fidelity: str = "adaptive"
    thermal_drift_tolerance: float = 0.05

    min_region_cells: int = 3
    partition_starts: int = 3
    partition_passes: int = 5
    min_partition_tolerance: float = 0.02

    shift_max_density: float = 1.15
    shift_max_iterations: int = 40
    shift_upper_slope: float = 1.0
    shift_lower_slope: float = 0.5
    shift_intercept: float = 1.0
    move_target_bins: int = 27
    move_passes: int = 1
    legalization_rounds: int = 1
    refine_passes: int = 3

    num_workers: int = 0

    seed: int = 0
    tech: TechnologyConfig = field(default_factory=TechnologyConfig)

    def __post_init__(self) -> None:
        if self.alpha_ilv <= 0:
            raise ValueError("alpha_ilv must be positive (it is also the "
                             "z-cut cost scale); use a tiny value to make "
                             "vias nearly free")
        if self.alpha_temp < 0:
            raise ValueError("alpha_temp cannot be negative")
        if self.num_layers < 1:
            raise ValueError("need at least one layer")
        if self.thermal_fidelity not in THERMAL_FIDELITY_MODES:
            raise ValueError(
                f"thermal_fidelity must be one of "
                f"{THERMAL_FIDELITY_MODES}, "
                f"got {self.thermal_fidelity!r}")
        if self.thermal_drift_tolerance <= 0:
            raise ValueError("thermal_drift_tolerance must be positive")
        if self.min_region_cells < 1:
            raise ValueError("min_region_cells must be >= 1")
        if not 0 < self.shift_max_density:
            raise ValueError("shift_max_density must be positive")
        if self.num_workers < 0:
            raise ValueError("num_workers cannot be negative "
                             "(0 = auto via REPRO_WORKERS)")

    @property
    def thermal_enabled(self) -> bool:
        """Whether any thermal mechanism is active."""
        return self.alpha_temp > 0 and (self.use_thermal_net_weights
                                        or self.use_trr_nets)

    # -- JSON round-trip -----------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Flatten to JSON-safe primitives (``tech`` as a nested dict).

        The layout matches what the obs manifest hashes, so a config
        loaded back with :meth:`from_dict` hashes identically.
        """
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlacementConfig":
        """Inverse of :meth:`to_dict`, rejecting unknown keys.

        Args:
            data: a mapping as produced by :meth:`to_dict` (for
                example the ``config`` section of a run manifest or a
                checkpoint).  ``tech`` may be a nested mapping or
                absent.

        Raises:
            ValueError: on unknown keys (at either level) or on values
                the dataclass validators refuse — a typo in a config
                file fails loudly instead of silently running with
                defaults.
        """
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown PlacementConfig keys: {unknown}")
        kwargs: Dict[str, Any] = dict(data)
        tech = kwargs.get("tech")
        if isinstance(tech, Mapping):
            tech_known = {f.name for f in
                          dataclasses.fields(TechnologyConfig)}
            tech_unknown = sorted(set(tech) - tech_known)
            if tech_unknown:
                raise ValueError(
                    f"unknown TechnologyConfig keys: {tech_unknown}")
            kwargs["tech"] = TechnologyConfig(**tech)
        elif tech is not None and not isinstance(tech, TechnologyConfig):
            raise ValueError("tech must be a mapping or TechnologyConfig")
        return cls(**kwargs)
