"""Incremental evaluation of the placement objective (Eq. 3).

    obj = sum_nets [ WL_i + a_ILV * ILV_i ]
        + a_TEMP * sum_cells R_j^cell * P_j^cell

The first term is over signal nets only.  The thermal term uses the
simple straight-path resistance model (position-dependent through the
cell's layer) and the dynamic power attribution of Eq. 10 with *actual*
net geometry — by coarse/detailed legalization time cells are spread
out, so the PEKO floors of global placement are no longer needed.

TRR nets never appear here: they are the partitioning-side *mechanism*
for the thermal term, which this class evaluates directly.

Data layout (the "kernel layer", see DESIGN.md):

- The static net/pin structure is a CSR-style pair of flat int arrays:
  ``_net_ptr`` (length ``num_signal_nets + 1``) and ``_pin_cell`` (one
  entry per unique net pin), so full recomputation (`rebuild`) is a
  handful of ``np.minimum.reduceat``/``np.maximum.reduceat`` segment
  reductions instead of a Python loop over per-net lists.  Drivers and
  the cell->net incidence have CSR mirrors of their own.
- Candidate scoring has two paths: :meth:`eval_moves` handles an
  arbitrary joint move set with O(local pins) scalar work, while
  :meth:`eval_moves_batch` / :meth:`eval_swaps_batch` score many
  *independent* candidates in one vectorized call, using per-net
  first/second-extreme caches ("what is the net's bounding box without
  this one pin").  The extreme caches are refreshed lazily: every
  :meth:`apply_moves` / :meth:`rebuild` marks them dirty and the next
  batched call rebuilds them with segment reductions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np
from numpy.typing import NDArray

from repro.analysis import (FloatArray, IntArray, contract, exact_nonzero,
                            exact_zero, hot_path, validate_arrays)
from repro.core.config import PlacementConfig
from repro.netlist.csr import signal_csr
from repro.netlist.placement import Placement
from repro.obs import get_recorder
from repro.thermal.power import PowerModel
from repro.thermal.resistance import ResistanceModel

Move = Tuple[int, float, float, int]  # (cell_id, x, y, layer)


@dataclass(frozen=True)
class ObjectiveTerms:
    """The Eq. 3 objective split into its three summands.

    Attributes:
        wirelength: total lateral HPWL, metres (= ``wl_term``).
        ilv: total interlayer-via count.
        wl_term: wirelength contribution to the objective.
        ilv_term: ``alpha_ilv * ilv`` contribution.
        thermal_term: ``alpha_temp * sum_j R_j P_j`` contribution.
    """

    wirelength: float
    ilv: int
    wl_term: float
    ilv_term: float
    thermal_term: float

    @property
    def total(self) -> float:
        """Sum of the three terms (equals ``ObjectiveState.total``)."""
        return self.wl_term + self.ilv_term + self.thermal_term

#: Per-axis extreme cache: (hi1, cnt_hi, hi2, lo1, cnt_lo, lo2) — the
#: count components are int64 rows, the rest float64.
ExtComponents = Tuple[NDArray[Any], ...]


class ObjectiveState:
    """Cached objective value with O(local) move evaluation.

    Args:
        placement: the placement being optimized; the state mirrors its
            coordinates and must be kept in sync via :meth:`apply_moves`.
        config: placement configuration (coefficients, technology).
        power_model: reused if provided (it is netlist-bound).
    """

    def __init__(self, placement: Placement, config: PlacementConfig,
                 power_model: Optional[PowerModel] = None) -> None:
        self.placement = placement
        self.config = config
        self.alpha_ilv = config.alpha_ilv
        self.alpha_temp = config.alpha_temp
        netlist = placement.netlist
        self.power_model = power_model or PowerModel(netlist, config.tech)
        n_cells = netlist.num_cells

        # --- static per-net structure (signal nets only) ---------------
        # The flat CSR arrays come from the netlist's cached SignalCSR
        # (built once per content, possibly int32-minimized and shared
        # across equal-content instances); the kernels here index much
        # larger products, so everything is upcast to int64 once at
        # construction.  List mirrors are kept for the scalar
        # (joint-move) path, where tiny-net Python loops still beat
        # per-array overhead.
        csr = signal_csr(netlist)
        self._net_ids: List[int] = csr.net_ids.tolist()
        self._pins: List[List[int]] = csr.pin_lists()
        self._drivers: List[List[int]] = csr.driver_lists()
        m = csr.num_nets
        ids = csr.net_ids.astype(np.int64, copy=False)
        self._s_wl: FloatArray = np.asarray(
            self.power_model.s_wl, dtype=np.float64)[ids]
        self._s_ilv: FloatArray = np.asarray(
            self.power_model.s_ilv, dtype=np.float64)[ids]
        self._pin_term: FloatArray = np.asarray(
            self.power_model.s_input_pins, dtype=np.float64)[ids]

        # net -> pin CSR
        self._net_deg = csr.net_deg.astype(np.int64)
        self._net_ptr = csr.net_ptr.astype(np.int64)
        self._pin_cell = csr.pin_cell.astype(np.int64)
        self._pin_net = csr.pin_net.astype(np.int64)
        # globally sorted membership keys: pins sorted within each net,
        # encoded as net * num_cells + cell (for vectorized searchsorted)
        self._pin_key = csr.pin_key

        # net -> driver CSR (with multiplicity, as the power model uses)
        self._drv_deg = np.diff(csr.drv_ptr).astype(np.int64)
        self._drv_ptr = csr.drv_ptr.astype(np.int64)
        self._drv_cell = csr.drv_cell.astype(np.int64)
        self._drv_net = csr.drv_net.astype(np.int64)

        # cell -> net CSR (+ the cell's driver-pin multiplicity per net)
        self._cell_net_ptr = csr.cell_net_ptr.astype(np.int64)
        self._cell_deg = np.diff(self._cell_net_ptr)
        self._cell_net_idx = csr.cell_net_idx.astype(np.int64)
        self._cell_net_drvmult: FloatArray = csr.cell_net_drvmult
        self._cell_nets: List[List[int]] = [
            e.tolist() for e in np.split(self._cell_net_idx,
                                         self._cell_net_ptr[1:-1])] \
            if n_cells else []

        # --- thermal resistance per (layer, cell) -----------------------
        # Lateral paths barely matter (the secondary film coefficient is
        # ~1e5x weaker than the heat sink), so the move-time resistance
        # is a function of layer and cell area, evaluated at the chip
        # centre.  This keeps move deltas O(1) while staying within a
        # fraction of a percent of the full 3D formula.
        rm = ResistanceModel(placement.chip, config.tech)
        areas = np.maximum(netlist.areas, 1e-18)
        cx = 0.5 * placement.chip.width
        cy = 0.5 * placement.chip.height
        self._r_by_layer: FloatArray = np.array(
            [[rm.cell_resistance(cx, cy, layer, float(a)) for a in areas]
             for layer in range(placement.chip.num_layers)],
            dtype=np.float64)

        self._extremes_dirty = True
        self._ext: Optional[Dict[str, ExtComponents]] = None
        self._ext_stack: Optional[ExtComponents] = None
        self._drv_rsum: Optional[FloatArray] = None
        self.rebuild()

    # ------------------------------------------------------------------
    @hot_path
    def rebuild(self) -> None:
        """Recompute every cache from the placement's current state."""
        get_recorder().count("objective/rebuilds")
        x = self.placement.x
        y = self.placement.y
        z = self.placement.z
        # scalar mirrors for the joint-move path
        self._xs: List[float] = x.tolist()
        self._ys: List[float] = y.tolist()
        self._zs: List[int] = [int(v) for v in z.tolist()]
        m = len(self._pins)
        if m:
            starts = self._net_ptr[:-1]
            px = x[self._pin_cell]
            py = y[self._pin_cell]
            pz = z[self._pin_cell].astype(np.float64)
            wl = (np.maximum.reduceat(px, starts)
                  - np.minimum.reduceat(px, starts)
                  + np.maximum.reduceat(py, starts)
                  - np.minimum.reduceat(py, starts))
            ilv = (np.maximum.reduceat(pz, starts)
                   - np.minimum.reduceat(pz, starts)).astype(np.int64)
        else:
            wl = np.zeros(0, dtype=np.float64)
            ilv = np.zeros(0, dtype=np.int64)
        self._wl: FloatArray = wl
        self._ilv: IntArray = ilv
        # leakage is position-independent but heats the cell, so it
        # belongs in the R_j * P_j term (zero by default)
        power = self.power_model.leakage_powers().astype(np.float64,
                                                         copy=True)
        if m:
            share = self._s_wl * wl + self._s_ilv * ilv + self._pin_term
            np.add.at(power, self._drv_cell, share[self._drv_net])
        self._power: FloatArray = power
        self._extremes_dirty = True
        self._total = self._compute_total()

    def _compute_total(self) -> float:
        net_term = float(self._wl.sum()) \
            + self.alpha_ilv * float(self._ilv.sum())
        thermal = 0.0
        if self.alpha_temp > 0:
            r = self._r_by_layer[self.placement.z,
                                 np.arange(len(self._power),
                                           dtype=np.int64)]
            thermal = float((r * self._power).sum())
        return net_term + self.alpha_temp * thermal

    # ------------------------------------------------------------------
    @hot_path
    def _refresh_extremes(self) -> None:
        """Per-net first/second extremes per axis, for exclusion queries.

        For each signal net and axis this caches the extreme value, how
        many pins attain it, and the runner-up value — enough to answer
        "what is the net's span if one given pin moves" without touching
        the other pins.  Invalidated by :meth:`apply_moves` and
        :meth:`rebuild`, rebuilt here with segment reductions.
        """
        if not self._extremes_dirty:
            return
        m = len(self._pins)
        starts = self._net_ptr[:-1]
        deg = self._net_deg
        pl = self.placement
        # primary storage is stacked (3, m) per component — axis order
        # x, y, z — so batch queries can fuse all three axes into one
        # fancy-indexed gather; self._ext holds per-axis row *views* of
        # the same memory, which the incremental updaters write through
        stack = [np.empty((3, m), dtype=np.float64),
                 np.empty((3, m), dtype=np.int64),
                 np.empty((3, m), dtype=np.float64),
                 np.empty((3, m), dtype=np.float64),
                 np.empty((3, m), dtype=np.int64),
                 np.empty((3, m), dtype=np.float64)]
        # lint: ok[RPL005] constant three-axis unrolling, not a per-net loop
        for ax, (axis, coords) in enumerate(
                (("x", pl.x), ("y", pl.y),
                 ("z", pl.z.astype(np.float64)))):
            if m:
                v = coords[self._pin_cell]
                hi1 = np.maximum.reduceat(v, starts)
                lo1 = np.minimum.reduceat(v, starts)
                at_hi = v == np.repeat(hi1, deg)
                at_lo = v == np.repeat(lo1, deg)
                stack[0][ax] = hi1
                stack[1][ax] = np.add.reduceat(at_hi.astype(np.int64),
                                               starts)
                stack[2][ax] = np.maximum.reduceat(
                    np.where(at_hi, -np.inf, v), starts)
                stack[3][ax] = lo1
                stack[4][ax] = np.add.reduceat(at_lo.astype(np.int64),
                                               starts)
                stack[5][ax] = np.minimum.reduceat(
                    np.where(at_lo, np.inf, v), starts)
        self._ext_stack = tuple(stack)
        self._ext = {axis: tuple(comp[ax] for comp in stack)
                     for ax, axis in enumerate(("x", "y", "z"))}
        if self.alpha_temp > 0:
            rsum = np.zeros(m, dtype=np.float64)
            if m and len(self._drv_cell):
                r = self._r_by_layer[pl.z[self._drv_cell], self._drv_cell]
                np.add.at(rsum, self._drv_net, r)
            self._drv_rsum = rsum
        self._extremes_dirty = False

    def _update_net_extremes(self, local: int) -> None:
        """Incrementally refresh one net's extreme cache (all axes).

        Nets are tiny (2-4 pins), so a scalar scan per net beats
        re-running the global segment reductions by orders of magnitude
        when only a handful of nets changed.
        """
        pins = self._pins[local]
        ext = self._ext
        assert ext is not None, "extreme caches queried while dirty"
        for axis, coords in (("x", self._xs), ("y", self._ys),
                             ("z", self._zs)):
            vals = [coords[c] for c in pins]
            hi1 = max(vals)
            lo1 = min(vals)
            hi2 = float("-inf")
            lo2 = float("inf")
            cnt_hi = 0
            cnt_lo = 0
            for v in vals:
                if v == hi1:
                    cnt_hi += 1
                elif v > hi2:
                    hi2 = v
                if v == lo1:
                    cnt_lo += 1
                elif v < lo2:
                    lo2 = v
            e = ext[axis]
            e[0][local] = hi1
            e[1][local] = cnt_hi
            e[2][local] = hi2
            e[3][local] = lo1
            e[4][local] = cnt_lo
            e[5][local] = lo2

    @hot_path
    def _update_nets_batch(self, nets: IntArray) -> None:
        """Refresh span caches, power attribution, and (when valid) the
        extreme caches of many nets with segment reductions.

        The vectorized counterpart of the per-net scalar bookkeeping in
        :meth:`apply_moves`; pays off once a joint move set touches a
        few dozen nets (whole-row cell shifting, snapshot restores).
        """
        deg = self._net_deg[nets]
        cum = np.cumsum(deg)
        starts = cum - deg
        total = int(cum[-1])
        offs = np.repeat(starts, deg)
        within = np.arange(total, dtype=np.int64) - offs
        pins = self._pin_cell[np.repeat(self._net_ptr[nets], deg)
                              + within]
        pl = self.placement
        ext = None if self._extremes_dirty else self._ext
        spans: Dict[str, Tuple[FloatArray, FloatArray]] = {}
        # lint: ok[RPL005] constant three-axis unrolling, not a per-net loop
        for axis, coords in (("x", pl.x), ("y", pl.y),
                             ("z", pl.z.astype(np.float64))):
            v = coords[pins]
            hi1 = np.maximum.reduceat(v, starts)
            lo1 = np.minimum.reduceat(v, starts)
            spans[axis] = (hi1, lo1)
            if ext is not None:
                at_hi = v == np.repeat(hi1, deg)
                at_lo = v == np.repeat(lo1, deg)
                e = ext[axis]
                e[0][nets] = hi1
                e[1][nets] = np.add.reduceat(at_hi.astype(np.int64),
                                             starts)
                e[2][nets] = np.maximum.reduceat(
                    np.where(at_hi, -np.inf, v), starts)
                e[3][nets] = lo1
                e[4][nets] = np.add.reduceat(at_lo.astype(np.int64),
                                             starts)
                e[5][nets] = np.minimum.reduceat(
                    np.where(at_lo, np.inf, v), starts)
        new_wl = (spans["x"][0] - spans["x"][1]
                  + spans["y"][0] - spans["y"][1])
        new_ilv = (spans["z"][0] - spans["z"][1]).astype(np.int64)
        d_wl = new_wl - self._wl[nets]
        d_ilv = new_ilv - self._ilv[nets]
        self._wl[nets] = new_wl
        self._ilv[nets] = new_ilv
        share = self._s_wl[nets] * d_wl + self._s_ilv[nets] * d_ilv
        ddeg = self._drv_deg[nets]
        dtotal = int(ddeg.sum())
        if dtotal:
            doffs = np.repeat(np.cumsum(ddeg) - ddeg, ddeg)
            dwithin = np.arange(dtotal, dtype=np.int64) - doffs
            drv = self._drv_cell[np.repeat(self._drv_ptr[nets], ddeg)
                                 + dwithin]
            np.add.at(self._power, drv, np.repeat(share, ddeg))

    @hot_path
    def _excl_span3(self, nets: IntArray, old: FloatArray,
                    new: FloatArray) -> FloatArray:
        """New spans of ``nets`` on all axes when one pin per entry
        moves from ``old`` to ``new`` (all other pins unchanged).

        ``old`` and ``new`` are ``(3, n)`` stacks (x, y, z rows); the
        result has the same shape.  One fused query over the stacked
        extreme caches replaces three per-axis calls.
        """
        assert self._ext_stack is not None, \
            "extreme caches queried while dirty"
        hi1, cnt_hi, hi2, lo1, cnt_lo, lo2 = self._ext_stack
        h1 = hi1[:, nets]
        l1 = lo1[:, nets]
        other_hi = np.where((old == h1) & (cnt_hi[:, nets] == 1),
                            hi2[:, nets], h1)
        other_lo = np.where((old == l1) & (cnt_lo[:, nets] == 1),
                            lo2[:, nets], l1)
        return np.maximum(new, other_hi) - np.minimum(new, other_lo)

    @hot_path
    def _pair_expansion(self, cells: IntArray
                        ) -> Tuple[IntArray, IntArray, FloatArray,
                                   IntArray]:
        """Expand candidates into (candidate, incident-net) pair rows."""
        deg = self._cell_deg[cells]
        total = int(deg.sum())
        pair_cand = np.repeat(np.arange(len(cells), dtype=np.int64), deg)
        if total:
            offs = np.repeat(np.cumsum(deg) - deg, deg)
            within = np.arange(total, dtype=np.int64) - offs
            flat = np.repeat(self._cell_net_ptr[cells], deg) + within
        else:
            flat = np.zeros(0, dtype=np.int64)
        return (pair_cand, self._cell_net_idx[flat],
                self._cell_net_drvmult[flat], deg)

    @hot_path
    def _pair_deltas(self, nets: IntArray, cells_rep: IntArray,
                     new_x: FloatArray, new_y: FloatArray,
                     new_z: IntArray
                     ) -> Tuple[FloatArray, FloatArray]:
        """Per (candidate, net) pair: d_wl, d_ilv for one moved pin."""
        pl = self.placement
        n = len(nets)
        old = np.empty((3, n), dtype=np.float64)
        new = np.empty((3, n), dtype=np.float64)
        old[0] = pl.x[cells_rep]
        old[1] = pl.y[cells_rep]
        old[2] = pl.z[cells_rep]
        new[0] = new_x
        new[1] = new_y
        new[2] = new_z
        spans = self._excl_span3(nets, old, new)
        d_wl = spans[0] + spans[1] - self._wl[nets]
        d_ilv = spans[2] - self._ilv[nets]
        return d_wl, d_ilv

    # ------------------------------------------------------------------
    @contract(shapes={"cells": ("n",), "xs": ("n",), "ys": ("n",),
                      "zs": ("n",)},
              dtypes={"cells": np.integer, "xs": np.floating,
                      "ys": np.floating, "zs": np.integer})
    @hot_path
    def eval_moves_batch(self, cells: Sequence[int],
                         xs: Sequence[float], ys: Sequence[float],
                         zs: Sequence[int]) -> FloatArray:
        """Objective deltas of many *independent* single-cell moves.

        Each candidate ``(cells[b], xs[b], ys[b], zs[b])`` is scored as
        if it were applied alone to the current state (exactly
        ``eval_moves([move_b])``), in one vectorized call.  A cell may
        appear in any number of candidates.  No state is changed.

        Returns:
            Array of ``new_objective - old_objective`` per candidate.
        """
        cells = np.asarray(cells, dtype=np.int64)
        if cells.size == 0:
            return np.zeros(0, dtype=np.float64)
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        zs = np.asarray(zs, dtype=np.int64)
        self._refresh_extremes()
        alpha_temp = self.alpha_temp
        out = np.zeros(len(cells), dtype=np.float64)

        pair_cand, nets, drvmult, deg = self._pair_expansion(cells)
        if len(nets):
            cells_rep = np.repeat(cells, deg)
            d_wl, d_ilv = self._pair_deltas(
                nets, cells_rep, np.repeat(xs, deg), np.repeat(ys, deg),
                np.repeat(zs, deg))
            np.add.at(out, pair_cand, d_wl + self.alpha_ilv * d_ilv)
        if alpha_temp > 0:
            p_delta = np.zeros(len(cells), dtype=np.float64)
            if len(nets):
                share = self._s_wl[nets] * d_wl + self._s_ilv[nets] * d_ilv
                np.add.at(out, pair_cand,
                          alpha_temp * share * self._drv_rsum[nets])
                np.add.at(p_delta, pair_cand, share * drvmult)
            r_old = self._r_by_layer[self.placement.z[cells], cells]
            r_new = self._r_by_layer[zs, cells]
            out += alpha_temp * (r_new - r_old) \
                * (self._power[cells] + p_delta)
        return out

    @contract(shapes={"cells_a": ("n",), "cells_b": ("n",)},
              dtypes={"cells_a": np.integer, "cells_b": np.integer})
    @hot_path
    def eval_swaps_batch(self, cells_a: Sequence[int],
                         cells_b: Sequence[int]) -> FloatArray:
        """Objective deltas of many independent full-position swaps.

        Candidate ``b`` exchanges the complete ``(x, y, layer)``
        positions of ``cells_a[b]`` and ``cells_b[b]`` (exactly the
        two-move joint set :meth:`eval_moves` scores).  Nets containing
        both cells are unchanged by a full exchange — their coordinate
        multiset is preserved — so each side reduces to single-pin
        exclusion queries over its non-shared nets.

        Returns:
            Array of objective deltas per swap candidate.
        """
        a = np.asarray(cells_a, dtype=np.int64)
        b = np.asarray(cells_b, dtype=np.int64)
        if a.size == 0:
            return np.zeros(0, dtype=np.float64)
        self._refresh_extremes()
        pl = self.placement
        alpha_temp = self.alpha_temp
        out = np.zeros(len(a), dtype=np.float64)
        n_cells = max(len(self._power), 1)
        p_delta_a = np.zeros(len(a), dtype=np.float64)
        p_delta_b = np.zeros(len(a), dtype=np.float64)

        # lint: ok[RPL005] constant two-sided unrolling, not a per-net loop
        for moved, other, p_delta in ((a, b, p_delta_a),
                                      (b, a, p_delta_b)):
            pair_cand, nets, drvmult, deg = self._pair_expansion(moved)
            if not len(nets):
                continue
            # drop nets shared with the swap partner (delta is zero)
            other_rep = np.repeat(other, deg)
            key = nets * np.int64(n_cells) + other_rep
            pos = np.searchsorted(self._pin_key, key)
            pos = np.minimum(pos, max(len(self._pin_key) - 1, 0))
            shared = (self._pin_key[pos] == key) if len(self._pin_key) \
                else np.zeros(len(key), dtype=bool)
            keep = ~shared
            if not keep.any():
                continue
            pair_cand = pair_cand[keep]
            nets = nets[keep]
            drvmult = drvmult[keep]
            moved_rep = np.repeat(moved, deg)[keep]
            other_rep = other_rep[keep]
            d_wl, d_ilv = self._pair_deltas(
                nets, moved_rep, pl.x[other_rep], pl.y[other_rep],
                pl.z[other_rep])
            np.add.at(out, pair_cand, d_wl + self.alpha_ilv * d_ilv)
            if alpha_temp > 0:
                share = self._s_wl[nets] * d_wl + self._s_ilv[nets] * d_ilv
                np.add.at(out, pair_cand,
                          alpha_temp * share * self._drv_rsum[nets])
                np.add.at(p_delta, pair_cand, share * drvmult)

        if alpha_temp > 0:
            # lint: ok[RPL005] constant two-sided unrolling, not a per-net loop
            for moved, other, p_delta in ((a, b, p_delta_a),
                                          (b, a, p_delta_b)):
                r_old = self._r_by_layer[pl.z[moved], moved]
                r_new = self._r_by_layer[pl.z[other], moved]
                out += alpha_temp * (r_new - r_old) \
                    * (self._power[moved] + p_delta)
        return out

    # ------------------------------------------------------------------
    @property
    def total(self) -> float:
        """Current objective value (Eq. 3)."""
        return self._total

    def wirelength(self) -> float:
        """Current total lateral HPWL, metres."""
        return float(self._wl.sum())

    def total_ilv(self) -> int:
        """Current total interlayer-via count."""
        return int(self._ilv.sum())

    def terms(self) -> ObjectiveTerms:
        """Decompose the current objective into its Eq. 3 summands.

        Returns:
            An :class:`ObjectiveTerms` whose ``total`` matches
            :attr:`total` up to floating-point association.
        """
        wl = float(self._wl.sum())
        ilv = int(self._ilv.sum())
        thermal = 0.0
        if self.alpha_temp > 0:
            r = self._r_by_layer[self.placement.z,
                                 np.arange(len(self._power),
                                           dtype=np.int64)]
            thermal = float((r * self._power).sum())
        return ObjectiveTerms(wirelength=wl, ilv=ilv, wl_term=wl,
                              ilv_term=self.alpha_ilv * ilv,
                              thermal_term=self.alpha_temp * thermal)

    def cell_power(self, cell_id: int) -> float:
        """Current attributed dynamic power of one cell, watts."""
        return float(self._power[cell_id])

    def cell_powers(self) -> FloatArray:
        """Copy of every cell's attributed dynamic power, watts.

        The fidelity policy bins these to the thermal grid; a copy so
        callers cannot desynchronise the incremental power cache.
        """
        return self._power.copy()

    def cell_nets(self, cell_id: int) -> List[int]:
        """Internal indices of the nets incident to a cell.

        Batch consumers use these for staleness tracking: a cached
        candidate delta for a cell is exact as long as none of the
        cell's incident nets has been touched since it was scored.
        """
        return self._cell_nets[cell_id]

    def cell_resistance(self, cell_id: int, layer: Optional[int] = None
                        ) -> float:
        """Move-time thermal resistance of a cell on a layer, K/W."""
        if layer is None:
            layer = self._zs[cell_id]
        return float(self._r_by_layer[layer, cell_id])

    # ------------------------------------------------------------------
    def eval_moves(self, moves: Sequence[Move]) -> float:
        """Objective delta of moving cells jointly (no state change).

        Args:
            moves: ``(cell_id, x, y, layer)`` tuples; a cell may appear
                once.  Swaps are two moves evaluated jointly.

        Returns:
            ``new_objective - old_objective`` (negative = improvement).
        """
        moved: Dict[int, Tuple[float, float, int]] = {
            cid: (x, y, z) for cid, x, y, z in moves}
        if len(moved) != len(moves):
            raise ValueError("a cell appears twice in one move set")
        xs, ys, zs = self._xs, self._ys, self._zs
        alpha_temp = self.alpha_temp
        affected: Dict[int, None] = {}
        for cid in moved:
            for local in self._cell_nets[cid]:
                affected[local] = None

        delta = 0.0
        p_delta: Dict[int, float] = {}
        for local in affected:
            pins = self._pins[local]
            lo_x = hi_x = lo_y = hi_y = None
            lo_z = hi_z = None
            for c in pins:
                pos = moved.get(c)
                if pos is None:
                    px, py, pz = xs[c], ys[c], zs[c]
                else:
                    px, py, pz = pos
                if lo_x is None:
                    lo_x = hi_x = px
                    lo_y = hi_y = py
                    lo_z = hi_z = pz
                else:
                    if px < lo_x:
                        lo_x = px
                    elif px > hi_x:
                        hi_x = px
                    if py < lo_y:
                        lo_y = py
                    elif py > hi_y:
                        hi_y = py
                    if pz < lo_z:
                        lo_z = pz
                    elif pz > hi_z:
                        hi_z = pz
            new_wl = (hi_x - lo_x) + (hi_y - lo_y)
            new_ilv = hi_z - lo_z
            d_wl = new_wl - float(self._wl[local])
            d_ilv = new_ilv - int(self._ilv[local])
            # bit-exact on purpose: skip-if-unchanged must match the
            # incremental cache update in apply_moves exactly
            if exact_zero(d_wl) and d_ilv == 0:
                continue
            delta += d_wl + self.alpha_ilv * d_ilv
            if alpha_temp > 0:
                share = (float(self._s_wl[local]) * d_wl
                         + float(self._s_ilv[local]) * d_ilv)
                if exact_nonzero(share):
                    for d in self._drivers[local]:
                        p_delta[d] = p_delta.get(d, 0.0) + share

        if alpha_temp > 0:
            r = self._r_by_layer
            power = self._power
            thermal_cells = set(moved)
            thermal_cells.update(p_delta)
            # sorted: float accumulation below is order-sensitive, and
            # set order is arbitrary (determinism pass RPA103)
            for c in sorted(thermal_cells):
                old_r = float(r[zs[c], c])
                pos = moved.get(c)
                new_r = (float(r[pos[2], c]) if pos is not None
                         else old_r)
                new_p = float(power[c]) + p_delta.get(c, 0.0)
                delta += alpha_temp * (new_r * new_p
                                       - old_r * float(power[c]))
        return delta

    def apply_moves(self, moves: Sequence[Move]) -> float:
        """Commit moves to the state *and* the placement arrays.

        Returns:
            The objective delta that was applied.
        """
        delta = self.eval_moves(moves)
        moved = {cid: (x, y, z) for cid, x, y, z in moves}
        # update per-net caches and power attribution
        affected: Dict[int, None] = {}
        for cid in moved:
            for local in self._cell_nets[cid]:
                affected[local] = None
        old_z = {cid: self._zs[cid] for cid in moved}
        for cid, (x, y, z) in moved.items():
            self._xs[cid] = x
            self._ys[cid] = y
            self._zs[cid] = int(z)
            self.placement.x[cid] = x
            self.placement.y[cid] = y
            self.placement.z[cid] = int(z)
        xs, ys, zs = self._xs, self._ys, self._zs
        if len(affected) >= 32:
            self._update_nets_batch(np.fromiter(
                affected.keys(), dtype=np.int64, count=len(affected)))
        else:
            for local in affected:
                pins = self._pins[local]
                nx = [xs[c] for c in pins]
                ny = [ys[c] for c in pins]
                nz = [zs[c] for c in pins]
                new_wl = (max(nx) - min(nx)) + (max(ny) - min(ny))
                new_ilv = max(nz) - min(nz)
                d_wl = new_wl - float(self._wl[local])
                d_ilv = new_ilv - int(self._ilv[local])
                if not self._extremes_dirty:
                    # incremental maintenance: a pin moving inside the
                    # bbox can still shift runner-ups/counts, so every
                    # affected net is re-scanned, not just
                    # span-changing ones
                    self._update_net_extremes(local)
                if exact_zero(d_wl) and d_ilv == 0:
                    continue
                self._wl[local] = new_wl
                self._ilv[local] = new_ilv
                share = (float(self._s_wl[local]) * d_wl
                         + float(self._s_ilv[local]) * d_ilv)
                if exact_nonzero(share):
                    for d in self._drivers[local]:
                        self._power[d] += share
        self._total += delta
        if not self._extremes_dirty:
            if self.alpha_temp > 0 and self._drv_rsum is not None:
                r = self._r_by_layer
                for cid, z0 in old_z.items():
                    z1 = self._zs[cid]
                    if z1 == z0:
                        continue
                    dr = float(r[z1, cid]) - float(r[z0, cid])
                    lo = int(self._cell_net_ptr[cid])
                    hi = int(self._cell_net_ptr[cid + 1])
                    for k in range(lo, hi):
                        mult = self._cell_net_drvmult[k]
                        if mult:
                            self._drv_rsum[self._cell_net_idx[k]] += \
                                mult * dr
        return delta

    # ------------------------------------------------------------------
    def optimal_region_center(self, cell_id: int
                              ) -> Tuple[float, float, float]:
        """Centre of the cell's optimal region [14], extended to 3D.

        For each incident net, the cell's cost is minimized anywhere
        inside the bounding box of the net's *other* pins; the classic
        optimal region is the median interval of those boxes.  We return
        the weighted median per axis (weights: 1 for x/y; the z medians
        use the same unweighted rule — the alpha_ilv scaling affects the
        *extent* of the target region, applied by the caller).

        The other-pin boxes are exclusion queries against the cached
        per-net extremes, and the median interval's midpoint of ``m``
        intervals is the median of their ``2m`` endpoints.
        """
        self._refresh_extremes()
        lo = self._cell_net_ptr[cell_id]
        hi = self._cell_net_ptr[cell_id + 1]
        nets = self._cell_net_idx[lo:hi]
        here = (self._xs[cell_id], self._ys[cell_id],
                float(self._zs[cell_id]))
        if not len(nets):
            return here
        # nets where the cell is the only pin have no "other" box
        nets = nets[self._net_deg[nets] > 1]
        if not len(nets):
            return here
        ext = self._ext
        assert ext is not None, "extreme caches queried while dirty"
        out = []
        for axis, coord in zip(("x", "y", "z"), here):
            hi1, cnt_hi, hi2, lo1, cnt_lo, lo2 = ext[axis]
            other_hi = np.where((coord == hi1[nets]) & (cnt_hi[nets] == 1),
                                hi2[nets], hi1[nets])
            other_lo = np.where((coord == lo1[nets]) & (cnt_lo[nets] == 1),
                                lo2[nets], lo1[nets])
            # median of the 2k interval endpoints, without np.median's
            # dispatch overhead (this is called once per cell per pass)
            ends = np.sort(np.concatenate((other_lo, other_hi)))
            n = len(ends)
            out.append(0.5 * (float(ends[(n - 1) // 2])
                              + float(ends[n // 2])))
        return (out[0], out[1], out[2])

    @contract(shapes={"cells": ("n",)}, dtypes={"cells": np.integer})
    @hot_path
    def optimal_region_centers(self, cells: Sequence[int]) -> FloatArray:
        """Optimal-region centres of many cells in one batched call.

        Returns:
            ``(3, n)`` array of per-axis centres (x, y, z rows), each
            column equal to :meth:`optimal_region_center` of that cell.
        """
        self._refresh_extremes()
        cells = np.asarray(cells, dtype=np.int64)
        n = len(cells)
        out = np.empty((3, n), dtype=np.float64)
        pl = self.placement
        out[0] = pl.x[cells]
        out[1] = pl.y[cells]
        out[2] = pl.z[cells]
        if not n:
            return out
        pair_cand, nets, _, _ = self._pair_expansion(cells)
        if not len(nets):
            return out
        # nets where the cell is the only pin have no "other" box
        keep = self._net_deg[nets] > 1
        pair_cand = pair_cand[keep]
        nets = nets[keep]
        if not len(nets):
            return out
        cells_rep = cells[pair_cand]
        old = np.empty((3, len(nets)), dtype=np.float64)
        old[0] = pl.x[cells_rep]
        old[1] = pl.y[cells_rep]
        old[2] = pl.z[cells_rep]
        assert self._ext_stack is not None, \
            "extreme caches queried while dirty"
        hi1, cnt_hi, hi2, lo1, cnt_lo, lo2 = self._ext_stack
        h1 = hi1[:, nets]
        l1 = lo1[:, nets]
        other_hi = np.where((old == h1) & (cnt_hi[:, nets] == 1),
                            hi2[:, nets], h1)
        other_lo = np.where((old == l1) & (cnt_lo[:, nets] == 1),
                            lo2[:, nets], l1)
        # per cell and axis: median of the 2k interval endpoints, via a
        # segmented sort of (owner, value) pairs
        owners = np.concatenate((pair_cand, pair_cand))
        cnt = 2 * np.bincount(pair_cand, minlength=n)
        ptr = np.concatenate(([0], np.cumsum(cnt)))[:-1]
        has = cnt > 0
        mid_lo = ptr + (cnt - 1) // 2
        mid_hi = ptr + cnt // 2
        # lint: ok[RPL005] constant three-axis unrolling, not a per-net loop
        for ax in range(3):
            ends = np.concatenate((other_lo[ax], other_hi[ax]))
            order = np.lexsort((ends, owners))
            ends = ends[order]
            out[ax][has] = 0.5 * (ends[mid_lo[has]] + ends[mid_hi[has]])
        return out

    # ------------------------------------------------------------------
    def checkpoint_state(self) -> Tuple[FloatArray, float]:
        """Snapshot the drift-accumulating state for checkpointing.

        Everything else this class caches (per-net spans, extreme
        caches, scalar mirrors) is an exact, order-independent function
        of the placement coordinates and rebuilds bit-identically from
        them.  The two exceptions are ``_power`` and ``_total``, which
        :meth:`apply_moves` maintains by accumulating deltas — their
        low bits depend on the *history* of applied moves, not just the
        final coordinates.  Checkpoint/resume must reproduce runs
        bit-identically, so exactly these two are serialized.

        Returns:
            ``(power, total)``: a copy of the per-cell power vector and
            the cached objective total.
        """
        return self._power.copy(), float(self._total)

    def restore_checkpoint(self, power: FloatArray,
                           total: float) -> None:
        """Restore a state saved by :meth:`checkpoint_state`.

        Rebuilds the exact caches from the (already restored) placement
        coordinates, then overwrites the two history-dependent
        accumulators so subsequent incremental updates continue from
        the same bits as the uninterrupted run.
        """
        self.rebuild()
        restored = np.asarray(power, dtype=np.float64).copy()
        if restored.shape != self._power.shape:
            raise ValueError(
                f"checkpoint power vector has shape {restored.shape}, "
                f"expected {self._power.shape}")
        self._power = restored
        self._total = float(total)

    def check_consistency(self, tol: float = 1e-9) -> None:
        """Verify caches against a from-scratch recomputation (tests)."""
        n_nets = len(self._wl)
        n_cells = len(self._power)
        validate_arrays(
            "ObjectiveState",
            _wl=(self._wl, np.float64, (n_nets,)),
            _ilv=(self._ilv, np.int64, (n_nets,)),
            _power=(self._power, np.float64, (n_cells,)),
            _s_wl=(self._s_wl, np.float64, (n_nets,)),
            _s_ilv=(self._s_ilv, np.float64, (n_nets,)),
            _cell_net_idx=(self._cell_net_idx, np.int64, None),
            _cell_net_ptr=(self._cell_net_ptr, np.int64, (n_cells + 1,)),
        )
        cached = self._total
        wl = self._wl.copy()
        ilv = self._ilv.copy()
        power = self._power.copy()
        self.rebuild()
        if abs(self._total - cached) > tol * max(1.0, abs(cached)):
            raise AssertionError(
                f"objective drifted: cached {cached}, true {self._total}")
        for a, b in ((wl, self._wl), (ilv, self._ilv), (power, self._power)):
            if not np.allclose(a, b, rtol=1e-9, atol=1e-18):
                raise AssertionError("per-item caches drifted")


def _median_interval_point(los: Sequence[float],
                           his: Sequence[float]) -> float:
    """Midpoint of the median interval of a set of 1D intervals.

    This is the minimizer set of the sum of distances to the intervals
    (the 1D optimal region); its midpoint is returned.
    """
    ends = list(los) + list(his)
    ends.sort()
    n = len(ends)
    lo = ends[(n - 1) // 2]
    hi = ends[n // 2]
    return 0.5 * (lo + hi)
