"""Incremental evaluation of the placement objective (Eq. 3).

    obj = sum_nets [ WL_i + a_ILV * ILV_i ]
        + a_TEMP * sum_cells R_j^cell * P_j^cell

The first term is over signal nets only.  The thermal term uses the
simple straight-path resistance model (position-dependent through the
cell's layer) and the dynamic power attribution of Eq. 10 with *actual*
net geometry — by coarse/detailed legalization time cells are spread
out, so the PEKO floors of global placement are no longer needed.

TRR nets never appear here: they are the partitioning-side *mechanism*
for the thermal term, which this class evaluates directly.

Every candidate cell movement in coarse and detailed legalization is
scored through :meth:`ObjectiveState.eval_moves`, so the hot paths use
plain Python lists and touch only the nets incident to moved cells.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import PlacementConfig
from repro.netlist.placement import Placement
from repro.thermal.power import PowerModel
from repro.thermal.resistance import ResistanceModel

Move = Tuple[int, float, float, int]  # (cell_id, x, y, layer)


class ObjectiveState:
    """Cached objective value with O(local) move evaluation.

    Args:
        placement: the placement being optimized; the state mirrors its
            coordinates and must be kept in sync via :meth:`apply_moves`.
        config: placement configuration (coefficients, technology).
        power_model: reused if provided (it is netlist-bound).
    """

    def __init__(self, placement: Placement, config: PlacementConfig,
                 power_model: Optional[PowerModel] = None):
        self.placement = placement
        self.config = config
        self.alpha_ilv = config.alpha_ilv
        self.alpha_temp = config.alpha_temp
        netlist = placement.netlist
        self.power_model = power_model or PowerModel(netlist, config.tech)

        # --- static per-net structure (signal nets only) ---------------
        self._net_ids: List[int] = []
        self._pins: List[List[int]] = []
        self._drivers: List[List[int]] = []
        self._s_wl: List[float] = []
        self._s_ilv: List[float] = []
        index_of_net: Dict[int, int] = {}
        for net in netlist.nets:
            if net.is_trr:
                continue
            index_of_net[net.id] = len(self._net_ids)
            self._net_ids.append(net.id)
            self._pins.append(net.unique_cell_ids)
            self._drivers.append(net.driver_ids)
            self._s_wl.append(float(self.power_model.s_wl[net.id]))
            self._s_ilv.append(float(self.power_model.s_ilv[net.id]))
        self._cell_nets: List[List[int]] = [[] for _ in
                                            range(netlist.num_cells)]
        for local, pins in enumerate(self._pins):
            for c in pins:
                self._cell_nets[c].append(local)

        # --- thermal resistance per (layer, cell) -----------------------
        # Lateral paths barely matter (the secondary film coefficient is
        # ~1e5x weaker than the heat sink), so the move-time resistance
        # is a function of layer and cell area, evaluated at the chip
        # centre.  This keeps move deltas O(1) while staying within a
        # fraction of a percent of the full 3D formula.
        rm = ResistanceModel(placement.chip, config.tech)
        areas = np.maximum(netlist.areas, 1e-18)
        cx = 0.5 * placement.chip.width
        cy = 0.5 * placement.chip.height
        self._r_by_layer: List[List[float]] = []
        for layer in range(placement.chip.num_layers):
            row = [rm.cell_resistance(cx, cy, layer, float(a))
                   for a in areas]
            self._r_by_layer.append(row)

        self.rebuild()

    # ------------------------------------------------------------------
    def rebuild(self) -> None:
        """Recompute every cache from the placement's current state."""
        xs = self.placement.x.tolist()
        ys = self.placement.y.tolist()
        zs = self.placement.z.tolist()
        self._xs = xs
        self._ys = ys
        self._zs = [int(z) for z in zs]
        self._wl: List[float] = []
        self._ilv: List[int] = []
        # leakage is position-independent but heats the cell, so it
        # belongs in the R_j * P_j term (zero by default)
        self._power: List[float] = self.power_model.leakage_powers(
            ).tolist()
        pin_term = self.power_model.s_input_pins
        for local, net_id in enumerate(self._net_ids):
            pins = self._pins[local]
            nx = [xs[c] for c in pins]
            ny = [ys[c] for c in pins]
            nz = [self._zs[c] for c in pins]
            wl = (max(nx) - min(nx)) + (max(ny) - min(ny))
            ilv = max(nz) - min(nz)
            self._wl.append(wl)
            self._ilv.append(ilv)
            share = (self._s_wl[local] * wl + self._s_ilv[local] * ilv
                     + float(pin_term[net_id]))
            for d in self._drivers[local]:
                self._power[d] += share
        self._total = self._compute_total()

    def _compute_total(self) -> float:
        net_term = sum(self._wl) + self.alpha_ilv * sum(self._ilv)
        thermal = 0.0
        if self.alpha_temp > 0:
            for c in range(len(self._power)):
                thermal += self._r_by_layer[self._zs[c]][c] * self._power[c]
        return net_term + self.alpha_temp * thermal

    # ------------------------------------------------------------------
    @property
    def total(self) -> float:
        """Current objective value (Eq. 3)."""
        return self._total

    def wirelength(self) -> float:
        """Current total lateral HPWL, metres."""
        return sum(self._wl)

    def total_ilv(self) -> int:
        """Current total interlayer-via count."""
        return int(sum(self._ilv))

    def cell_power(self, cell_id: int) -> float:
        """Current attributed dynamic power of one cell, watts."""
        return self._power[cell_id]

    def cell_resistance(self, cell_id: int, layer: Optional[int] = None
                        ) -> float:
        """Move-time thermal resistance of a cell on a layer, K/W."""
        if layer is None:
            layer = self._zs[cell_id]
        return self._r_by_layer[layer][cell_id]

    # ------------------------------------------------------------------
    def eval_moves(self, moves: Sequence[Move]) -> float:
        """Objective delta of moving cells jointly (no state change).

        Args:
            moves: ``(cell_id, x, y, layer)`` tuples; a cell may appear
                once.  Swaps are two moves evaluated jointly.

        Returns:
            ``new_objective - old_objective`` (negative = improvement).
        """
        moved: Dict[int, Tuple[float, float, int]] = {
            cid: (x, y, z) for cid, x, y, z in moves}
        if len(moved) != len(moves):
            raise ValueError("a cell appears twice in one move set")
        xs, ys, zs = self._xs, self._ys, self._zs
        alpha_temp = self.alpha_temp
        affected: Dict[int, None] = {}
        for cid in moved:
            for local in self._cell_nets[cid]:
                affected[local] = None

        delta = 0.0
        p_delta: Dict[int, float] = {}
        for local in affected:
            pins = self._pins[local]
            lo_x = hi_x = lo_y = hi_y = None
            lo_z = hi_z = None
            for c in pins:
                pos = moved.get(c)
                if pos is None:
                    px, py, pz = xs[c], ys[c], zs[c]
                else:
                    px, py, pz = pos
                if lo_x is None:
                    lo_x = hi_x = px
                    lo_y = hi_y = py
                    lo_z = hi_z = pz
                else:
                    if px < lo_x:
                        lo_x = px
                    elif px > hi_x:
                        hi_x = px
                    if py < lo_y:
                        lo_y = py
                    elif py > hi_y:
                        hi_y = py
                    if pz < lo_z:
                        lo_z = pz
                    elif pz > hi_z:
                        hi_z = pz
            new_wl = (hi_x - lo_x) + (hi_y - lo_y)
            new_ilv = hi_z - lo_z
            d_wl = new_wl - self._wl[local]
            d_ilv = new_ilv - self._ilv[local]
            if d_wl == 0.0 and d_ilv == 0:
                continue
            delta += d_wl + self.alpha_ilv * d_ilv
            if alpha_temp > 0:
                share = (self._s_wl[local] * d_wl
                         + self._s_ilv[local] * d_ilv)
                if share != 0.0:
                    for d in self._drivers[local]:
                        p_delta[d] = p_delta.get(d, 0.0) + share

        if alpha_temp > 0:
            thermal_cells = set(moved)
            thermal_cells.update(p_delta)
            for c in thermal_cells:
                old_r = self._r_by_layer[zs[c]][c]
                pos = moved.get(c)
                new_r = (self._r_by_layer[pos[2]][c] if pos is not None
                         else old_r)
                new_p = self._power[c] + p_delta.get(c, 0.0)
                delta += alpha_temp * (new_r * new_p
                                       - old_r * self._power[c])
        return delta

    def apply_moves(self, moves: Sequence[Move]) -> float:
        """Commit moves to the state *and* the placement arrays.

        Returns:
            The objective delta that was applied.
        """
        delta = self.eval_moves(moves)
        moved = {cid: (x, y, z) for cid, x, y, z in moves}
        # update per-net caches and power attribution
        affected: Dict[int, None] = {}
        for cid in moved:
            for local in self._cell_nets[cid]:
                affected[local] = None
        for cid, (x, y, z) in moved.items():
            self._xs[cid] = x
            self._ys[cid] = y
            self._zs[cid] = int(z)
            self.placement.x[cid] = x
            self.placement.y[cid] = y
            self.placement.z[cid] = int(z)
        xs, ys, zs = self._xs, self._ys, self._zs
        for local in affected:
            pins = self._pins[local]
            nx = [xs[c] for c in pins]
            ny = [ys[c] for c in pins]
            nz = [zs[c] for c in pins]
            new_wl = (max(nx) - min(nx)) + (max(ny) - min(ny))
            new_ilv = max(nz) - min(nz)
            d_wl = new_wl - self._wl[local]
            d_ilv = new_ilv - self._ilv[local]
            if d_wl == 0.0 and d_ilv == 0:
                continue
            self._wl[local] = new_wl
            self._ilv[local] = new_ilv
            share = (self._s_wl[local] * d_wl + self._s_ilv[local] * d_ilv)
            if share != 0.0:
                for d in self._drivers[local]:
                    self._power[d] += share
        self._total += delta
        return delta

    # ------------------------------------------------------------------
    def optimal_region_center(self, cell_id: int
                              ) -> Tuple[float, float, float]:
        """Centre of the cell's optimal region [14], extended to 3D.

        For each incident net, the cell's cost is minimized anywhere
        inside the bounding box of the net's *other* pins; the classic
        optimal region is the median interval of those boxes.  We return
        the weighted median per axis (weights: 1 for x/y; the z medians
        use the same unweighted rule — the alpha_ilv scaling affects the
        *extent* of the target region, applied by the caller).
        """
        xs_lo: List[float] = []
        xs_hi: List[float] = []
        ys_lo: List[float] = []
        ys_hi: List[float] = []
        zs_lo: List[float] = []
        zs_hi: List[float] = []
        xs, ys, zs = self._xs, self._ys, self._zs
        for local in self._cell_nets[cell_id]:
            others = [c for c in self._pins[local] if c != cell_id]
            if not others:
                continue
            ox = [xs[c] for c in others]
            oy = [ys[c] for c in others]
            oz = [zs[c] for c in others]
            xs_lo.append(min(ox))
            xs_hi.append(max(ox))
            ys_lo.append(min(oy))
            ys_hi.append(max(oy))
            zs_lo.append(min(oz))
            zs_hi.append(max(oz))
        if not xs_lo:
            return (xs[cell_id], ys[cell_id], float(zs[cell_id]))
        return (_median_interval_point(xs_lo, xs_hi),
                _median_interval_point(ys_lo, ys_hi),
                _median_interval_point(zs_lo, zs_hi))

    def check_consistency(self, tol: float = 1e-9) -> None:
        """Verify caches against a from-scratch recomputation (tests)."""
        cached = self._total
        wl = list(self._wl)
        ilv = list(self._ilv)
        power = list(self._power)
        self.rebuild()
        if abs(self._total - cached) > tol * max(1.0, abs(cached)):
            raise AssertionError(
                f"objective drifted: cached {cached}, true {self._total}")
        for a, b in ((wl, self._wl), (ilv, self._ilv), (power, self._power)):
            if not np.allclose(a, b, rtol=1e-9, atol=1e-18):
                raise AssertionError("per-item caches drifted")


def _median_interval_point(los: List[float], his: List[float]) -> float:
    """Midpoint of the median interval of a set of 1D intervals.

    This is the minimizer set of the sum of distances to the intervals
    (the 1D optimal region); its midpoint is returned.
    """
    ends = sorted(los) + sorted(his)
    ends.sort()
    n = len(ends)
    lo = ends[(n - 1) // 2]
    hi = ends[n // 2]
    return 0.5 * (lo + hi)
