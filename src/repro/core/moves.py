"""Coarse-legalization moves and swaps (Section 4.2).

Two procedures, both greedy per cell and both scored with the full
objective (Eq. 3) through :class:`~repro.core.objective.ObjectiveState`:

- **Global move/swap** — each cell's *optimal region* (the 3D extension
  of [14]: the median box of its nets' other-pin bounding boxes, where
  moving the cell cannot increase any incident net) seeds a target
  region of a fixed number of bins around the objective minimum.  The
  cell tries moving to each target bin and swapping with cells living
  there; the best objective-reducing action is executed.
- **Local move/swap** — the same machinery with the target region
  restricted to the bins adjacent to the cell's current bin.

Moves respect bin capacity: a move is only considered if the target bin
can take the cell's area (cells already there are assumed shifted aside
by the subsequent cell-shifting step, whose cost the density limit
bounds); swaps must keep both bins within the limit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.config import PlacementConfig
from repro.core.objective import ObjectiveState
from repro.geometry.density import BinIndex, DensityMesh
from repro.obs import get_recorder


class MoveOptimizer:
    """Greedy move/swap passes over a coarse density mesh.

    Args:
        objective: shared incremental objective state.
        config: placement configuration.
        mesh: coarse mesh; built internally if omitted.
        density_limit: bins are not filled beyond this density by moves.
        max_swap_candidates: swap partners examined per target bin.
        rng: seeded generator for tie-breaking jitter; derived from
            ``config.seed`` if omitted, so runs are reproducible either
            way.
    """

    def __init__(self, objective: ObjectiveState, config: PlacementConfig,
                 mesh: Optional[DensityMesh] = None,
                 density_limit: float = 1.5,
                 max_swap_candidates: int = 4,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.objective = objective
        self.config = config
        placement = objective.placement
        netlist = placement.netlist
        self.mesh = mesh or DensityMesh.coarse_for(
            placement.chip, netlist.average_cell_width,
            netlist.average_cell_height)
        self.density_limit = density_limit
        self.max_swap_candidates = max_swap_candidates
        self._rng = (rng if rng is not None
                     else np.random.default_rng(config.seed + 101))
        self._areas = netlist.areas
        self._movable = [c.id for c in netlist.cells if c.movable]

    # ------------------------------------------------------------------
    def global_pass(self) -> int:
        """One pass of global moves/swaps; returns the number executed."""
        radius = self._radius_for_bins(self.config.move_target_bins)
        return self._pass(local_only=False, radius=radius)

    def local_pass(self) -> int:
        """One pass of local (adjacent-bin) moves/swaps."""
        return self._pass(local_only=True, radius=1)

    # ------------------------------------------------------------------
    def _radius_for_bins(self, bins: int) -> int:
        """Chebyshev radius whose 3D cube holds about ``bins`` bins."""
        radius = 1
        while (2 * radius + 1) ** 3 < bins and radius < 8:
            radius += 1
        return radius

    def _rebuild_mesh(self) -> None:
        placement = self.objective.placement
        self.mesh.build_from_placement(placement, self._areas)

    def _targets(self, cid: int, cur_bin: BinIndex, local_only: bool,
                 radius: int,
                 center: Optional[Tuple[float, float, float]] = None
                 ) -> List[BinIndex]:
        """Target bins for one cell (optimal region or local shell).

        ``center`` lets callers supply a precomputed optimal-region
        centre (from the batched
        :meth:`ObjectiveState.optimal_region_centers`); when omitted the
        scalar query runs here.
        """
        mesh = self.mesh
        placement = self.objective.placement
        if local_only:
            return mesh.bins_within(cur_bin, radius)
        if center is None:
            center = self.objective.optimal_region_center(cid)
        ox, oy, oz = center
        center = mesh.bin_of(ox, oy, placement.chip.clamp_layer(oz))
        targets = mesh.bins_within(center, radius)
        # The optimal-region z is the nets' median layer; with
        # thermal placement on, the objective minimum may sit on
        # a cooler layer instead, so the full vertical stack at
        # the optimal lateral position joins the target region.
        if self.config.alpha_temp > 0:
            ci, cj, _ = center
            for k in range(mesh.nz):
                index = (ci, cj, k)
                if index not in targets:
                    targets.append(index)
        return targets

    def _pass(self, local_only: bool, radius: int) -> int:
        """One move/swap pass in two phases.

        Phase 1 generates every cell's candidates against a snapshot of
        the entering state and scores them in one batched move call and
        one batched swap call.  Phase 2 walks the cells in permutation
        order and greedily applies each cell's best candidate: while the
        cell's (and a swap partner's) incident nets are untouched the
        cached delta is exact and is used as-is; once the neighbourhood
        has been dirtied by earlier applies, the chosen candidate is
        re-checked with a scalar evaluation before committing.  Cells
        displaced mid-pass by a swap partner fall back to the sequential
        :meth:`_best_action` scan from their new position.
        """
        self._rebuild_mesh()
        placement = self.objective.placement
        obj = self.objective
        mesh = self.mesh
        order = [int(c) for c in self._rng.permutation(self._movable)]

        # ---- phase 1: candidate generation + two giant batch scores --
        cur_bin_of: Dict[int, BinIndex] = {}
        per_cell: Dict[int, List[Tuple[int, int]]] = {}
        mv_xs: List[float] = []
        mv_ys: List[float] = []
        mv_zs: List[int] = []
        mv_bins: List[BinIndex] = []
        mv_cells: List[int] = []
        sw_a: List[int] = []
        sw_b: List[int] = []
        sw_bins: List[BinIndex] = []
        centers: Optional[Dict[int, Tuple[float, float, float]]] = None
        if not local_only:
            orc = obj.optimal_region_centers(order)
            centers = {cid: (orc[0, i], orc[1, i], orc[2, i])
                       for i, cid in enumerate(order)}
        for cid in order:
            cur_bin = mesh.bin_of(float(placement.x[cid]),
                                  float(placement.y[cid]),
                                  int(placement.z[cid]))
            cur_bin_of[cid] = cur_bin
            targets = self._targets(
                cid, cur_bin, local_only, radius,
                centers[cid] if centers is not None else None)
            entries = self._collect_candidates(
                cid, cur_bin, targets, mv_cells, mv_xs, mv_ys, mv_zs,
                mv_bins, sw_a, sw_b, sw_bins)
            if entries:
                per_cell[cid] = entries
        move_deltas = obj.eval_moves_batch(mv_cells, mv_xs, mv_ys, mv_zs)
        swap_deltas = obj.eval_swaps_batch(sw_a, sw_b)

        # ---- phase 2: greedy apply with staleness tracking -----------
        executed = 0
        dirty: Set[int] = set()
        moved_since: Set[int] = set()
        areas = self._areas
        limit = self.density_limit * mesh.bin_capacity
        cell_nets = obj.cell_nets
        for cid in order:
            if cid in moved_since:
                # displaced by an earlier swap: rescan from the new spot
                cur_bin = mesh.bin_of(float(placement.x[cid]),
                                      float(placement.y[cid]),
                                      int(placement.z[cid]))
                targets = self._targets(cid, cur_bin, local_only, radius)
                action = self._best_action(cid, cur_bin, targets)
                if action is not None:
                    moves, target_bin, partner = action
                    obj.apply_moves(moves)
                    self._update_mesh(cid, cur_bin, target_bin, partner)
                    executed += 1
                    dirty.update(cell_nets(cid))
                    if partner is not None:
                        moved_since.add(partner)
                        dirty.update(cell_nets(partner))
                continue
            entries = per_cell.get(cid)
            if not entries:
                continue
            best: Optional[Tuple[int, int]] = None
            best_delta = -1e-18  # strictly improving only
            for kind, k in entries:  # already in generation (seq) order
                delta = (move_deltas[k] if kind == 0 else swap_deltas[k])
                if delta < best_delta:
                    best_delta = delta
                    best = (kind, k)
            if best is None:
                continue
            kind, k = best
            stale = not dirty.isdisjoint(cell_nets(cid))
            area = float(areas[cid])
            if kind == 0:
                t = mv_bins[k]
                # the bin may have filled up since the snapshot
                if mesh.area_in(t) + area > limit:
                    continue
                mv = [(cid, mv_xs[k], mv_ys[k], mv_zs[k])]
                partner = None
            else:
                other = sw_b[k]
                if other in moved_since:
                    continue
                t = sw_bins[k]
                other_area = float(areas[other])
                if mesh.area_in(t) - other_area + area > limit:
                    continue
                if (mesh.area_in(cur_bin_of[cid]) - area + other_area
                        > limit):
                    continue
                stale = stale or not dirty.isdisjoint(cell_nets(other))
                mv = [(cid, float(placement.x[other]),
                       float(placement.y[other]),
                       int(placement.z[other])),
                      (other, float(placement.x[cid]),
                       float(placement.y[cid]),
                       int(placement.z[cid]))]
                partner = other
            if stale and obj.eval_moves(mv) >= -1e-18:
                continue
            obj.apply_moves(mv)
            self._update_mesh(cid, cur_bin_of[cid], t, partner)
            executed += 1
            moved_since.add(cid)
            dirty.update(cell_nets(cid))
            if partner is not None:
                moved_since.add(partner)
                dirty.update(cell_nets(partner))
        rec = get_recorder()
        if rec.enabled:
            n_cand = len(mv_cells) + len(sw_a)
            rec.count("moves/candidates", float(n_cand))
            rec.count("moves/executed", float(executed))
            rec.record("moves/pass",
                       local=1.0 if local_only else 0.0,
                       candidates=float(n_cand),
                       executed=float(executed),
                       accept_rate=(float(executed) / n_cand
                                    if n_cand else 0.0))
        return executed

    def _collect_candidates(self, cid: int, cur_bin: BinIndex,
                            targets: List[BinIndex],
                            mv_cells: List[int], mv_xs: List[float],
                            mv_ys: List[float], mv_zs: List[int],
                            mv_bins: List[BinIndex], sw_a: List[int],
                            sw_b: List[int], sw_bins: List[BinIndex]
                            ) -> List[Tuple[int, int]]:
        """Append one cell's move/swap candidates to the shared batch
        lists; returns ``(kind, index)`` entries in generation order
        (kind 0 = move, 1 = swap)."""
        mesh = self.mesh
        areas = self._areas
        area = float(areas[cid])
        limit = self.density_limit * mesh.bin_capacity
        bin_area = mesh._area
        bin_members = mesh._members
        bw = mesh.bin_width
        bh = mesh.bin_height
        cur_area = float(bin_area[cur_bin])
        max_swaps = self.max_swap_candidates
        entries: List[Tuple[int, int]] = []
        jitter = self._rng.random(2 * len(targets)).tolist()
        for ti, t in enumerate(targets):
            if t == cur_bin:
                continue
            tx = (t[0] + jitter[2 * ti]) * bw
            ty = (t[1] + jitter[2 * ti + 1]) * bh
            tz = t[2]
            area_t = float(bin_area[t])
            if area_t + area <= limit:
                entries.append((0, len(mv_cells)))
                mv_cells.append(cid)
                mv_xs.append(tx)
                mv_ys.append(ty)
                mv_zs.append(tz)
                mv_bins.append(t)
            members = bin_members.get(t)
            if not members:
                continue
            if len(members) > max_swaps:
                members = list(self._rng.choice(
                    members, size=max_swaps, replace=False))
            for other in members:
                other = int(other)
                if other == cid:
                    continue
                other_area = float(areas[other])
                if area_t - other_area + area > limit:
                    continue
                if cur_area - area + other_area > limit:
                    continue
                entries.append((1, len(sw_a)))
                sw_a.append(cid)
                sw_b.append(other)
                sw_bins.append(t)
        return entries

    # ------------------------------------------------------------------
    def _best_action(self, cid: int, cur_bin: BinIndex,
                     targets: List[BinIndex]
                     ) -> Optional[Tuple[
                         List[Tuple[int, float, float, int]],
                         BinIndex, Optional[int]]]:
        """Best objective-reducing move or swap for one cell, or None.

        All candidates for the cell — one jittered landing point per
        roomy target bin plus the sampled swap partners — are generated
        first and scored in two batched objective calls
        (:meth:`ObjectiveState.eval_moves_batch` /
        :meth:`~ObjectiveState.eval_swaps_batch`); ties resolve to the
        earliest-generated candidate, matching the sequential scan.
        """
        mesh = self.mesh
        placement = self.objective.placement
        area = float(self._areas[cid])
        limit = self.density_limit * mesh.bin_capacity
        cur_area = mesh.area_in(cur_bin)
        half_w = 0.5 * mesh.bin_width
        half_h = 0.5 * mesh.bin_height

        move_xs: List[float] = []
        move_ys: List[float] = []
        move_zs: List[int] = []
        move_bins: List[BinIndex] = []
        move_seq: List[int] = []
        swap_others: List[int] = []
        swap_bins: List[BinIndex] = []
        swap_seq: List[int] = []
        seq = 0
        # jitter landing points inside each bin so successive movers do
        # not pile up on the exact bin centre (drawn in one batch)
        jitter = self._rng.random(2 * len(targets))
        for ti, t in enumerate(targets):
            if t == cur_bin:
                continue
            tx, ty, tz = mesh.bin_center(t)
            tx += (jitter[2 * ti] - 0.5) * half_w * 2.0
            ty += (jitter[2 * ti + 1] - 0.5) * half_h * 2.0
            area_t = mesh.area_in(t)
            # plain move, if the bin has room
            if area_t + area <= limit:
                move_xs.append(tx)
                move_ys.append(ty)
                move_zs.append(tz)
                move_bins.append(t)
                move_seq.append(seq)
                seq += 1
            # swaps with cells in the target bin
            members = mesh.members(t)
            if len(members) > self.max_swap_candidates:
                members = list(self._rng.choice(
                    members, size=self.max_swap_candidates,
                    replace=False))
            for other in members:
                other = int(other)
                if other == cid:
                    continue
                other_area = float(self._areas[other])
                # exchanged areas must keep both bins within the limit
                if area_t - other_area + area > limit:
                    continue
                if cur_area - area + other_area > limit:
                    continue
                swap_others.append(other)
                swap_bins.append(t)
                swap_seq.append(seq)
                seq += 1

        move_deltas = self.objective.eval_moves_batch(
            [cid] * len(move_xs), move_xs, move_ys, move_zs)
        swap_deltas = self.objective.eval_swaps_batch(
            [cid] * len(swap_others), swap_others)

        best_delta = -1e-18  # strictly improving only
        best: Optional[Tuple[List[Tuple[int, float, float, int]],
                             BinIndex, Optional[int]]] = None
        # scan candidates in generation order, strict improvement only
        candidates = sorted(
            [(s, float(d), ("move", k))
             for k, (s, d) in enumerate(zip(move_seq, move_deltas))]
            + [(s, float(d), ("swap", k))
               for k, (s, d) in enumerate(zip(swap_seq, swap_deltas))])
        for _, delta, (kind, k) in candidates:
            if delta < best_delta:
                best_delta = delta
                if kind == "move":
                    best = ([(cid, move_xs[k], move_ys[k],
                              move_zs[k])], move_bins[k], None)
                else:
                    other = swap_others[k]
                    moves = [
                        (cid, float(placement.x[other]),
                         float(placement.y[other]),
                         int(placement.z[other])),
                        (other, float(placement.x[cid]),
                         float(placement.y[cid]),
                         int(placement.z[cid])),
                    ]
                    best = (moves, swap_bins[k], other)
        return best

    def _update_mesh(self, cid: int, cur_bin: BinIndex,
                     target_bin: BinIndex,
                     swap_partner: Optional[int]) -> None:
        area = float(self._areas[cid])
        self.mesh.remove_cell(cid, cur_bin, area)
        if swap_partner is None:
            self.mesh.add_cell(cid, *self.mesh.bin_center(target_bin),
                               area)
        else:
            partner_area = float(self._areas[swap_partner])
            # partner takes the cell's old slot; the cell takes the
            # partner's exact old position (inside target_bin)
            self.mesh.remove_cell(int(swap_partner), target_bin,
                                  partner_area)
            placement = self.objective.placement
            self.mesh.add_cell(cid, float(placement.x[cid]),
                               float(placement.y[cid]),
                               int(placement.z[cid]), area)
            self.mesh.add_cell(int(swap_partner),
                               float(placement.x[swap_partner]),
                               float(placement.y[swap_partner]),
                               int(placement.z[swap_partner]),
                               partner_area)
        return None
