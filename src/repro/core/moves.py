"""Coarse-legalization moves and swaps (Section 4.2).

Two procedures, both greedy per cell and both scored with the full
objective (Eq. 3) through :class:`~repro.core.objective.ObjectiveState`:

- **Global move/swap** — each cell's *optimal region* (the 3D extension
  of [14]: the median box of its nets' other-pin bounding boxes, where
  moving the cell cannot increase any incident net) seeds a target
  region of a fixed number of bins around the objective minimum.  The
  cell tries moving to each target bin and swapping with cells living
  there; the best objective-reducing action is executed.
- **Local move/swap** — the same machinery with the target region
  restricted to the bins adjacent to the cell's current bin.

Moves respect bin capacity: a move is only considered if the target bin
can take the cell's area (cells already there are assumed shifted aside
by the subsequent cell-shifting step, whose cost the density limit
bounds); swaps must keep both bins within the limit.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.config import PlacementConfig
from repro.core.objective import ObjectiveState
from repro.geometry.density import BinIndex, DensityMesh


class MoveOptimizer:
    """Greedy move/swap passes over a coarse density mesh.

    Args:
        objective: shared incremental objective state.
        config: placement configuration.
        mesh: coarse mesh; built internally if omitted.
        density_limit: bins are not filled beyond this density by moves.
        max_swap_candidates: swap partners examined per target bin.
    """

    def __init__(self, objective: ObjectiveState, config: PlacementConfig,
                 mesh: Optional[DensityMesh] = None,
                 density_limit: float = 1.5,
                 max_swap_candidates: int = 4):
        self.objective = objective
        self.config = config
        placement = objective.placement
        netlist = placement.netlist
        self.mesh = mesh or DensityMesh.coarse_for(
            placement.chip, netlist.average_cell_width,
            netlist.average_cell_height)
        self.density_limit = density_limit
        self.max_swap_candidates = max_swap_candidates
        self._rng = np.random.default_rng(config.seed + 101)
        self._areas = netlist.areas
        self._movable = [c.id for c in netlist.cells if c.movable]

    # ------------------------------------------------------------------
    def global_pass(self) -> int:
        """One pass of global moves/swaps; returns the number executed."""
        radius = self._radius_for_bins(self.config.move_target_bins)
        return self._pass(local_only=False, radius=radius)

    def local_pass(self) -> int:
        """One pass of local (adjacent-bin) moves/swaps."""
        return self._pass(local_only=True, radius=1)

    # ------------------------------------------------------------------
    def _radius_for_bins(self, bins: int) -> int:
        """Chebyshev radius whose 3D cube holds about ``bins`` bins."""
        radius = 1
        while (2 * radius + 1) ** 3 < bins and radius < 8:
            radius += 1
        return radius

    def _rebuild_mesh(self) -> None:
        placement = self.objective.placement
        self.mesh.build(
            (cid, x, y, z, float(self._areas[cid]))
            for cid, x, y, z in placement.iter_movable())

    def _pass(self, local_only: bool, radius: int) -> int:
        self._rebuild_mesh()
        placement = self.objective.placement
        mesh = self.mesh
        executed = 0
        order = self._rng.permutation(self._movable)
        for cid in order:
            cid = int(cid)
            cur_bin = mesh.bin_of(float(placement.x[cid]),
                                  float(placement.y[cid]),
                                  int(placement.z[cid]))
            if local_only:
                center = cur_bin
                targets = mesh.bins_within(center, radius)
            else:
                ox, oy, oz = self.objective.optimal_region_center(cid)
                center = mesh.bin_of(ox, oy,
                                     placement.chip.clamp_layer(oz))
                targets = mesh.bins_within(center, radius)
                # The optimal-region z is the nets' median layer; with
                # thermal placement on, the objective minimum may sit on
                # a cooler layer instead, so the full vertical stack at
                # the optimal lateral position joins the target region.
                if self.config.alpha_temp > 0:
                    ci, cj, _ = center
                    for k in range(mesh.nz):
                        index = (ci, cj, k)
                        if index not in targets:
                            targets.append(index)
            action = self._best_action(cid, cur_bin, targets)
            if action is not None:
                moves, target_bin, swap_partner = action
                self.objective.apply_moves(moves)
                self._update_mesh(cid, cur_bin, target_bin, swap_partner)
                executed += 1
        return executed

    # ------------------------------------------------------------------
    def _best_action(self, cid: int, cur_bin: BinIndex,
                     targets: List[BinIndex]):
        """Best objective-reducing move or swap for one cell, or None."""
        mesh = self.mesh
        placement = self.objective.placement
        area = float(self._areas[cid])
        capacity = mesh.bin_capacity
        best_delta = -1e-18  # strictly improving only
        best = None
        for t in targets:
            if t == cur_bin:
                continue
            tx, ty, tz = mesh.bin_center(t)
            # jitter the landing point inside the bin so successive
            # movers do not pile up on the exact bin centre
            tx += (self._rng.random() - 0.5) * mesh.bin_width
            ty += (self._rng.random() - 0.5) * mesh.bin_height
            # plain move, if the bin has room
            if (mesh.area_in(t) + area
                    <= self.density_limit * capacity):
                move = [(cid, tx, ty, tz)]
                delta = self.objective.eval_moves(move)
                if delta < best_delta:
                    best_delta = delta
                    best = (move, t, None)
            # swaps with cells in the target bin
            members = mesh.members(t)
            if len(members) > self.max_swap_candidates:
                members = list(self._rng.choice(
                    members, size=self.max_swap_candidates,
                    replace=False))
            for other in members:
                other = int(other)
                if other == cid:
                    continue
                other_area = float(self._areas[other])
                # exchanged areas must keep both bins within the limit
                if (mesh.area_in(t) - other_area + area
                        > self.density_limit * capacity):
                    continue
                if (mesh.area_in(cur_bin) - area + other_area
                        > self.density_limit * capacity):
                    continue
                moves = [
                    (cid, float(placement.x[other]),
                     float(placement.y[other]), int(placement.z[other])),
                    (other, float(placement.x[cid]),
                     float(placement.y[cid]), int(placement.z[cid])),
                ]
                delta = self.objective.eval_moves(moves)
                if delta < best_delta:
                    best_delta = delta
                    best = (moves, t, other)
        return best

    def _update_mesh(self, cid: int, cur_bin: BinIndex,
                     target_bin: BinIndex, swap_partner) -> None:
        area = float(self._areas[cid])
        self.mesh.remove_cell(cid, cur_bin, area)
        if swap_partner is None:
            self.mesh.add_cell(cid, *self.mesh.bin_center(target_bin),
                               area)
        else:
            partner_area = float(self._areas[swap_partner])
            # partner takes the cell's old slot; the cell takes the
            # partner's exact old position (inside target_bin)
            self.mesh.remove_cell(int(swap_partner), target_bin,
                                  partner_area)
            placement = self.objective.placement
            self.mesh.add_cell(cid, float(placement.x[cid]),
                               float(placement.y[cid]),
                               int(placement.z[cid]), area)
            self.mesh.add_cell(int(swap_partner),
                               float(placement.x[swap_partner]),
                               float(placement.y[swap_partner]),
                               int(placement.z[swap_partner]),
                               partner_area)
        return None
