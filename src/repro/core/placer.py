"""The full placement pipeline (Section 6 of the paper).

``Placer3D`` wires together every stage:

1. add TRR nets and start all cells at the chip centre;
2. global placement by recursive bisection (Section 3);
3. global then local move/swap passes (Section 4.2);
4. iterative cell shifting until the coarse mesh's max density is close
   to one (Section 4.1);
5. detailed legalization (Section 5);
6. optionally repeat the coarse+detailed stages ("can be repeated
   multiple times if additional optimization is required" — the 65x/7.7%
   effort knob of Section 7).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.cellshift import CellShifter
from repro.core.config import PlacementConfig
from repro.core.detailed import DetailedLegalizer, check_legal
from repro.core.globalplace import GlobalPlacer
from repro.core.moves import MoveOptimizer
from repro.core.objective import ObjectiveState
from repro.core.refine import LegalRefiner
from repro.core.trrnets import add_trr_nets
from repro.geometry.chip import ChipGeometry
from repro.netlist.netlist import Netlist
from repro.netlist.placement import Placement
from repro.thermal.power import PowerModel


@dataclass
class PlacementResult:
    """Outcome of a full placement run.

    Attributes:
        placement: the final (legal) placement.
        objective: final objective value (Eq. 3).
        wirelength: final total lateral HPWL, metres.
        ilv: final interlayer-via count.
        runtime_seconds: wall-clock runtime of :meth:`Placer3D.run`.
        stage_seconds: wall-clock per pipeline stage.
    """

    placement: Placement
    objective: float
    wirelength: float
    ilv: int
    runtime_seconds: float
    stage_seconds: Dict[str, float] = field(default_factory=dict)


class Placer3D:
    """Thermal- and via-aware 3D placer.

    Args:
        netlist: the circuit to place.  TRR nets are added in place when
            thermal placement is enabled.
        config: coefficients and effort knobs.
        chip: the placement volume; sized automatically from the cell
            area, layer count, whitespace and row spacing when omitted.

    Example:
        >>> from repro import Placer3D, PlacementConfig, load_benchmark
        >>> netlist = load_benchmark("ibm01", scale=0.02)
        >>> placer = Placer3D(netlist, PlacementConfig(alpha_ilv=1e-5))
        >>> result = placer.run()
        >>> result.ilv >= 0
        True
    """

    def __init__(self, netlist: Netlist, config: PlacementConfig,
                 chip: Optional[ChipGeometry] = None) -> None:
        self.netlist = netlist
        self.config = config
        if chip is None:
            chip = ChipGeometry.for_cell_area(
                netlist.total_cell_area, config.num_layers,
                netlist.average_cell_height,
                whitespace=config.tech.whitespace,
                inter_row_space=config.tech.inter_row_space,
                min_row_width=24.0 * netlist.average_cell_width,
                layer_thickness=config.tech.layer_thickness,
                interlayer_thickness=config.tech.interlayer_thickness,
                substrate_thickness=config.tech.substrate_thickness)
        elif chip.num_layers != config.num_layers:
            raise ValueError("chip layer count disagrees with config")
        self.chip = chip

    # ------------------------------------------------------------------
    def run(self, check: bool = False) -> PlacementResult:
        """Run the full pipeline.

        Args:
            check: assert legality of the final placement (tests).

        Returns:
            A :class:`PlacementResult` with the legal placement.
        """
        config = self.config
        start = time.perf_counter()
        stages: Dict[str, float] = {}

        if config.thermal_enabled and config.use_trr_nets:
            add_trr_nets(self.netlist)
        placement = Placement.at_center(self.netlist, self.chip)
        power_model = PowerModel(self.netlist, config.tech)

        t0 = time.perf_counter()
        GlobalPlacer(placement, config, power_model).run()
        stages["global"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        objective = ObjectiveState(placement, config, power_model)
        stages["objective_build"] = time.perf_counter() - t0

        # The coarse+detailed loop is not monotone round to round (the
        # move/swap phase deliberately un-legalizes), so the best legal
        # snapshot across rounds is what the flow returns.
        best_state = None
        for _ in range(max(1, config.legalization_rounds)):
            t0 = time.perf_counter()
            mover = MoveOptimizer(objective, config)
            for _ in range(max(1, config.move_passes)):
                mover.global_pass()
                mover.local_pass()
            stages["moves"] = stages.get("moves", 0.0) \
                + (time.perf_counter() - t0)

            t0 = time.perf_counter()
            CellShifter(objective, config).run()
            stages["cellshift"] = stages.get("cellshift", 0.0) \
                + (time.perf_counter() - t0)

            t0 = time.perf_counter()
            DetailedLegalizer(objective, config).run()
            stages["detailed"] = stages.get("detailed", 0.0) \
                + (time.perf_counter() - t0)

            if config.refine_passes > 0:
                t0 = time.perf_counter()
                LegalRefiner(objective, config).run(config.refine_passes)
                stages["refine"] = stages.get("refine", 0.0) \
                    + (time.perf_counter() - t0)

            if best_state is None or objective.total < best_state[0]:
                best_state = (objective.total, placement.x.copy(),
                              placement.y.copy(), placement.z.copy())

        if best_state is not None and objective.total > best_state[0]:
            placement.x[:] = best_state[1]
            placement.y[:] = best_state[2]
            placement.z[:] = best_state[3]
            objective.rebuild()

        if check:
            check_legal(placement)

        runtime = time.perf_counter() - start
        return PlacementResult(
            placement=placement,
            objective=objective.total,
            wirelength=objective.wirelength(),
            ilv=objective.total_ilv(),
            runtime_seconds=runtime,
            stage_seconds=stages,
        )
