"""The full placement pipeline (Section 6 of the paper).

``Placer3D`` wires together every stage:

1. add TRR nets and start all cells at the chip centre;
2. global placement by recursive bisection (Section 3);
3. global then local move/swap passes (Section 4.2);
4. iterative cell shifting until the coarse mesh's max density is close
   to one (Section 4.1);
5. detailed legalization (Section 5);
6. optionally repeat the coarse+detailed stages ("can be repeated
   multiple times if additional optimization is required" — the 65x/7.7%
   effort knob of Section 7).

Timing and convergence metrics go through :mod:`repro.obs`: the run is
a span tree (``place/round2/moves`` …) rather than a flat timing dict,
so repeated coarse+detailed rounds keep their boundaries.  The flat
``stage_seconds`` view (summed across rounds) is still derived for
backwards compatibility; ``round_seconds`` and ``telemetry`` carry the
per-round detail.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import ContextManager, Dict, List, Optional, Tuple

import numpy as np

from repro.core.cellshift import CellShifter
from repro.core.config import PlacementConfig
from repro.core.detailed import DetailedLegalizer, check_legal
from repro.core.globalplace import GlobalPlacer
from repro.core.moves import MoveOptimizer
from repro.core.objective import ObjectiveState
from repro.core.refine import LegalRefiner
from repro.core.trrnets import add_trr_nets
from repro.geometry.chip import ChipGeometry
from repro.netlist.netlist import Netlist
from repro.netlist.placement import Placement
from repro.obs import Recorder, Telemetry, get_logger, use_recorder
from repro.obs.trace import SpanStats
from repro.thermal.power import PowerModel

_log = get_logger(__name__)

#: Stages that may appear under each round span, in pipeline order.
ROUND_STAGES = ("moves", "cellshift", "detailed", "refine")


@dataclass
class PlacementResult:
    """Outcome of a full placement run.

    Attributes:
        placement: the final (legal) placement.
        objective: final objective value (Eq. 3).
        wirelength: final total lateral HPWL, metres.
        ilv: final interlayer-via count.
        runtime_seconds: wall-clock runtime of :meth:`Placer3D.run`.
        stage_seconds: wall-clock per pipeline stage, summed across
            coarse+detailed rounds (back-compat flat view).
        round_seconds: one ``{stage: seconds}`` dict per
            coarse+detailed round, in round order.
        telemetry: full recorder snapshot (span tree, counters,
            series) for the run.
    """

    placement: Placement
    objective: float
    wirelength: float
    ilv: int
    runtime_seconds: float
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    round_seconds: List[Dict[str, float]] = field(default_factory=list)
    telemetry: Optional[Telemetry] = None


def _stage_summary(place_node: SpanStats,
                   ) -> Tuple[Dict[str, float], List[Dict[str, float]]]:
    """Derive the flat and per-round stage timing views.

    Args:
        place_node: the ``place`` span (the run root).

    Returns:
        ``(stage_seconds, round_seconds)`` where ``stage_seconds`` sums
        each stage across rounds (round boundaries collapsed, matching
        the historical dict) and ``round_seconds`` keeps them separate.
    """
    stage_seconds: Dict[str, float] = {}
    round_seconds: List[Dict[str, float]] = []
    for name in ("global", "objective_build"):
        node = place_node.children.get(name)
        if node is not None and node.calls:
            stage_seconds[name] = node.seconds
    rounds = sorted((c for c in place_node.children.values()
                     if c.name.startswith("round")),
                    key=lambda c: int(c.name[len("round"):]))
    for rnd in rounds:
        per_round: Dict[str, float] = {}
        for stage in ROUND_STAGES:
            node = rnd.children.get(stage)
            if node is not None and node.calls:
                per_round[stage] = node.seconds
                stage_seconds[stage] = stage_seconds.get(stage, 0.0) \
                    + node.seconds
        round_seconds.append(per_round)
    return stage_seconds, round_seconds


class Placer3D:
    """Thermal- and via-aware 3D placer.

    Args:
        netlist: the circuit to place.  TRR nets are added in place when
            thermal placement is enabled.
        config: coefficients and effort knobs.
        chip: the placement volume; sized automatically from the cell
            area, layer count, whitespace and row spacing when omitted.
        recorder: optional telemetry recorder.  When given, it is also
            installed as the ambient recorder for the duration of
            :meth:`run`, so deep components (FM passes, the thermal
            solver, move/shift loops) report counters and series into
            it.  When omitted, a private recorder captures stage spans
            only — the ambient recorder stays the shared no-op, keeping
            the default path at its historical cost.

    Example:
        >>> from repro import Placer3D, PlacementConfig, load_benchmark
        >>> netlist = load_benchmark("ibm01", scale=0.02)
        >>> placer = Placer3D(netlist, PlacementConfig(alpha_ilv=1e-5))
        >>> result = placer.run()
        >>> result.ilv >= 0
        True
    """

    def __init__(self, netlist: Netlist, config: PlacementConfig,
                 chip: Optional[ChipGeometry] = None,
                 recorder: Optional[Recorder] = None) -> None:
        self.netlist = netlist
        self.config = config
        self.recorder = recorder
        if chip is None:
            chip = ChipGeometry.for_cell_area(
                netlist.total_cell_area, config.num_layers,
                netlist.average_cell_height,
                whitespace=config.tech.whitespace,
                inter_row_space=config.tech.inter_row_space,
                min_row_width=24.0 * netlist.average_cell_width,
                layer_thickness=config.tech.layer_thickness,
                interlayer_thickness=config.tech.interlayer_thickness,
                substrate_thickness=config.tech.substrate_thickness)
        elif chip.num_layers != config.num_layers:
            raise ValueError("chip layer count disagrees with config")
        self.chip = chip

    # ------------------------------------------------------------------
    def run(self, check: bool = False) -> PlacementResult:
        """Run the full pipeline.

        Args:
            check: assert legality of the final placement (tests).

        Returns:
            A :class:`PlacementResult` with the legal placement.
        """
        config = self.config
        provided = self.recorder
        rec = provided if provided is not None and provided.enabled \
            else Recorder()
        scope: ContextManager[object] = (
            use_recorder(provided) if provided is not None
            else nullcontext())
        _log.info("placing %s: %d cells, %d nets, %d layers",
                  self.netlist.name, self.netlist.num_cells,
                  self.netlist.num_nets, config.num_layers)

        with scope, rec.span("place"):
            if config.thermal_enabled and config.use_trr_nets:
                add_trr_nets(self.netlist)
            placement = Placement.at_center(self.netlist, self.chip)
            power_model = PowerModel(self.netlist, config.tech)

            with rec.span("global"):
                GlobalPlacer(placement, config, power_model).run()

            with rec.span("objective_build"):
                objective = ObjectiveState(placement, config,
                                           power_model)
            _log.info("global placement done: objective %.6e",
                      objective.total)

            # The coarse+detailed loop is not monotone round to round
            # (the move/swap phase deliberately un-legalizes), so the
            # best legal snapshot across rounds is what the flow
            # returns.
            best_state: Optional[Tuple[float, np.ndarray, np.ndarray,
                                       np.ndarray]] = None
            n_rounds = max(1, config.legalization_rounds)
            for rnd in range(1, n_rounds + 1):
                with rec.span(f"round{rnd}"):
                    with rec.span("moves"):
                        mover = MoveOptimizer(objective, config)
                        for _ in range(max(1, config.move_passes)):
                            mover.global_pass()
                            mover.local_pass()

                    with rec.span("cellshift"):
                        CellShifter(objective, config).run()

                    with rec.span("detailed"):
                        DetailedLegalizer(objective, config).run()

                    if config.refine_passes > 0:
                        with rec.span("refine"):
                            LegalRefiner(objective, config).run(
                                config.refine_passes)

                if best_state is None \
                        or objective.total < best_state[0]:
                    best_state = (objective.total, placement.x.copy(),
                                  placement.y.copy(),
                                  placement.z.copy())
                terms = objective.terms()
                rec.record("placer/round", round=float(rnd),
                           objective=objective.total,
                           best_objective=best_state[0],
                           wl_term=terms.wl_term,
                           ilv_term=terms.ilv_term,
                           thermal_term=terms.thermal_term)
                _log.info(
                    "round %d/%d: objective %.6e (best %.6e, "
                    "wl %.4e, ilv %d)", rnd, n_rounds, objective.total,
                    best_state[0], terms.wirelength, terms.ilv)

            if best_state is not None \
                    and objective.total > best_state[0]:
                placement.x[:] = best_state[1]
                placement.y[:] = best_state[2]
                placement.z[:] = best_state[3]
                objective.rebuild()
                _log.info("restored best round snapshot: %.6e",
                          objective.total)

            if check:
                check_legal(placement)

        place_node = rec.tracer.root.child("place")
        stage_seconds, round_seconds = _stage_summary(place_node)
        return PlacementResult(
            placement=placement,
            objective=objective.total,
            wirelength=objective.wirelength(),
            ilv=objective.total_ilv(),
            runtime_seconds=place_node.seconds,
            stage_seconds=stage_seconds,
            round_seconds=round_seconds,
            telemetry=rec.snapshot(),
        )
