"""The full placement pipeline (Section 6 of the paper).

``Placer3D`` is a thin driver over the composable stage pipeline: it
builds the default :class:`~repro.core.pipeline.PipelineSpec` from the
config (or accepts a custom one), creates the shared
:class:`~repro.core.context.PlacementContext`, and hands both to the
:class:`~repro.core.pipeline.PlacementPipeline` runner.  The default
spec is the paper's flow:

1. add TRR nets and start all cells at the chip centre (context
   creation);
2. global placement by recursive bisection (Section 3);
3. global then local move/swap passes (Section 4.2);
4. iterative cell shifting until the coarse mesh's max density is close
   to one (Section 4.1);
5. detailed legalization (Section 5);
6. optionally repeat the coarse+detailed stages ("can be repeated
   multiple times if additional optimization is required" — the 65x/7.7%
   effort knob of Section 7).

Timing and convergence metrics go through :mod:`repro.obs`: the run is
a span tree (``place/round2/moves`` …) rather than a flat timing dict,
so repeated coarse+detailed rounds keep their boundaries.  The flat
``stage_seconds`` view (summed across rounds) is still derived — from
the spec, not a hardcoded stage list; ``round_seconds`` and
``telemetry`` carry the per-round detail.

With a ``checkpoint_dir``, the runner serializes the context after
every stage boundary, and ``run(resume=True)`` picks the run back up
from the last boundary, reproducing the uninterrupted run's final
placement bit-identically (see :mod:`repro.core.checkpoint`).
"""

from __future__ import annotations

from contextlib import nullcontext
from pathlib import Path
from typing import Callable, ContextManager, Optional, Union

from repro.core.config import PlacementConfig
from repro.core.context import PlacementContext, auto_chip
from repro.core.detailed import check_legal
from repro.core.pipeline import (PipelineSpec, PlacementPipeline,
                                 default_pipeline_spec, stage_summary)
from repro.core.result import PlacementResult
from repro.geometry.chip import ChipGeometry
from repro.netlist.netlist import Netlist
from repro.obs import Recorder, get_logger, use_recorder

__all__ = ["ROUND_STAGES", "PlacementResult", "Placer3D"]

_log = get_logger(__name__)

#: Stages of the default spec's repeat group, in pipeline order
#: (back-compat constant; spec-driven code should consult
#: ``PipelineSpec.round_stage_names()`` instead).
ROUND_STAGES = ("moves", "cellshift", "detailed", "refine")


class Placer3D:
    """Thermal- and via-aware 3D placer.

    Args:
        netlist: the circuit to place.  TRR nets are added in place when
            thermal placement is enabled (idempotently — re-running a
            placer or constructing several over one netlist never
            duplicates them).
        config: coefficients and effort knobs.
        chip: the placement volume; sized automatically from the cell
            area, layer count, whitespace and row spacing when omitted.
        recorder: optional telemetry recorder.  When given, it is also
            installed as the ambient recorder for the duration of
            :meth:`run`, so deep components (FM passes, the thermal
            solver, move/shift loops) report counters and series into
            it.  When omitted, a private recorder captures stage spans
            only — the ambient recorder stays the shared no-op, keeping
            the default path at its historical cost.
        spec: the pipeline to run; defaults to the paper's flow derived
            from ``config`` (``default_pipeline_spec``).  Custom specs
            swap stages by registry name — e.g. ``quadratic`` instead
            of ``global`` — without touching this driver.

    Example:
        >>> from repro import Placer3D, PlacementConfig, load_benchmark
        >>> netlist = load_benchmark("ibm01", scale=0.02)
        >>> placer = Placer3D(netlist, PlacementConfig(alpha_ilv=1e-5))
        >>> result = placer.run()
        >>> result.ilv >= 0
        True
    """

    def __init__(self, netlist: Netlist, config: PlacementConfig,
                 chip: Optional[ChipGeometry] = None,
                 recorder: Optional[Recorder] = None,
                 spec: Optional[PipelineSpec] = None) -> None:
        self.netlist = netlist
        self.config = config
        self.recorder = recorder
        if chip is None:
            chip = auto_chip(netlist, config)
        elif chip.num_layers != config.num_layers:
            raise ValueError("chip layer count disagrees with config")
        self.chip = chip
        self.spec = spec if spec is not None \
            else default_pipeline_spec(config)

    # ------------------------------------------------------------------
    def run(self, check: bool = False, *,
            checkpoint_dir: Optional[Union[str, Path]] = None,
            resume: bool = False,
            halt_after: Optional[str] = None,
            preempt: Optional[Callable[[], bool]] = None,
            ) -> PlacementResult:
        """Run the configured pipeline.

        Args:
            check: assert legality of the final placement (tests).
            checkpoint_dir: serialize the run state here after every
                stage boundary (and resume from here).
            resume: restore the last checkpoint in ``checkpoint_dir``
                before running; completed stages are skipped and the
                final placement is bit-identical to an uninterrupted
                run.
            halt_after: stop after the named pipeline unit (e.g.
                ``"round1/detailed"``), leaving the checkpoint behind;
                raises :class:`~repro.core.pipeline.PipelineHalted`.
            preempt: cooperative preemption hook polled at every unit
                boundary after its checkpoint is saved; returning
                ``True`` raises
                :class:`~repro.core.pipeline.PipelinePreempted` (the
                job scheduler's cancel path).

        Returns:
            A :class:`PlacementResult` with the legal placement.

        Raises:
            CheckpointError: ``resume`` without a matching checkpoint.
            PipelineHalted: the ``halt_after`` boundary was reached.
            PipelinePreempted: the ``preempt`` hook requested a stop.
        """
        config = self.config
        provided = self.recorder
        rec = provided if provided is not None and provided.enabled \
            else Recorder()
        scope: ContextManager[object] = (
            use_recorder(provided) if provided is not None
            else nullcontext())
        _log.info("placing %s: %d cells, %d nets, %d layers",
                  self.netlist.name, self.netlist.num_cells,
                  self.netlist.num_nets, config.num_layers)

        with scope, rec.span("place"):
            ctx = PlacementContext.create(self.netlist, config,
                                          chip=self.chip, recorder=rec)
            pipeline = PlacementPipeline(self.spec, ctx,
                                         checkpoint_dir=checkpoint_dir,
                                         halt_after=halt_after,
                                         preempt=preempt)
            if resume:
                pipeline.resume()
            pipeline.run()
            objective = ctx.objective
            # final reporting is a boundary: exact field + drift check
            ctx.record_thermal(boundary=True)

            if check:
                check_legal(ctx.placement)

        place_node = rec.tracer.root.child("place")
        stage_seconds, round_seconds = stage_summary(place_node,
                                                     self.spec)
        return PlacementResult(
            placement=ctx.placement,
            objective=objective.total,
            wirelength=objective.wirelength(),
            ilv=objective.total_ilv(),
            runtime_seconds=place_node.seconds,
            stage_seconds=stage_seconds,
            round_seconds=round_seconds,
            telemetry=rec.snapshot(),
            thermal=(ctx.thermal_policy.metadata()
                     if ctx.thermal_policy_built else None),
        )
