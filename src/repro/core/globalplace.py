"""Global placement by 3D recursive bisection (Section 3).

Regions carry a subset of cells and a physical sub-volume of the chip.
Each region is bisected with the multilevel partitioner; the cut
direction is chosen as orthogonal to the largest of {width, height,
weighted depth}, where the *weighted depth* is the region's layer count
times ``alpha_ilv`` — the min-cut objective then spends its cuts in the
costliest direction first.  Terminal propagation [11] represents
connectivity to the rest of the chip with fixed terminal vertices;
partitioning tolerance tracks the region's whitespace; and after
partitioning the cut line is repositioned so cell area is evenly
distributed between the children.

Thermal awareness enters through the per-net weights of Eq. 8 (applied
to whichever direction the cut runs) and, for z cuts, through the TRR
nets of Eq. 12, whose weights are refreshed once per bisection level as
positions firm up.

Execution is a frontier-parallel BFS over bisection levels: after the
first cut, the regions of one level share nothing, so each level's
pending regions are reduced to compact picklable
:class:`~repro.partition.subproblem.BisectionTask` payloads and
dispatched together on an execution backend (:mod:`repro.parallel`).
Determinism is order-independent by construction: every region carries
a *path id* (heap numbering of the bisection tree — root 1, children
``2p`` / ``2p + 1``), its partitioner seed derives from
``(config.seed, path)`` via :func:`repro.parallel.task_seed`, and
results are applied in frontier order — so ``num_workers=N`` produces
a bit-identical placement to ``num_workers=1``.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import PlacementConfig
from repro.core.netweights import compute_net_weights
from repro.core.trrnets import compute_trr_weights
from repro.metrics.wirelength import compute_net_metrics
from repro.netlist.placement import Placement
from repro.obs import Recorder, Telemetry, get_logger, get_recorder
from repro.parallel import (ExecutionBackend, SharedArrayPool,
                            create_backend, shared_memory_available,
                            task_seed)
from repro.partition.subproblem import (BisectionTask, solve,
                                        solve_packed_recorded,
                                        solve_recorded, task_payload)
from repro.thermal.power import PowerModel
from repro.thermal.resistance import ResistanceModel

_log = get_logger(__name__)

#: Axis labels in cut-direction priority evaluation order.
_AXES = ("x", "y", "z")

#: Recursion depth cap (the bisection tree is level-balanced, so 64
#: levels is far beyond any real instance).
_MAX_LEVELS = 64


@dataclass
class Region:
    """A recursive-bisection region: cells plus a physical sub-volume.

    Attributes:
        cell_ids: movable cells assigned to the region.
        xlo, xhi, ylo, yhi: lateral bounds, metres.
        zlo, zhi: inclusive layer range.
        path: deterministic bisection-tree path id (heap numbering:
            root 1, children ``2 * path`` and ``2 * path + 1``).  Seeds
            and tie-breaks derive from it, never from visit order.
    """

    cell_ids: List[int]
    xlo: float
    xhi: float
    ylo: float
    yhi: float
    zlo: int
    zhi: int
    path: int = field(default=1)

    @property
    def width(self) -> float:
        """Lateral extent in x, metres."""
        return self.xhi - self.xlo

    @property
    def height(self) -> float:
        """Lateral extent in y, metres."""
        return self.yhi - self.ylo

    @property
    def layers(self) -> int:
        """Number of layers the region spans."""
        return self.zhi - self.zlo + 1

    @property
    def center(self) -> Tuple[float, float, int]:
        """Geometric centre ``(x, y, layer)``."""
        return (0.5 * (self.xlo + self.xhi), 0.5 * (self.ylo + self.yhi),
                (self.zlo + self.zhi) // 2)


class GlobalPlacer:
    """Runs recursive bisection on a placement (mutating it in place).

    Args:
        placement: cells should start at the chip centre
            (:meth:`Placement.at_center`); TRR nets should already be on
            the netlist if thermal placement is wanted.
        config: all coefficients and effort knobs (including
            ``num_workers``, the execution-backend parallelism).
        power_model: shared power model (created if omitted).
        backend: execution backend for per-level bisection batches.
            When omitted, one is created from ``config.num_workers``
            for the duration of :meth:`run` and closed afterwards.
    """

    def __init__(self, placement: Placement, config: PlacementConfig,
                 power_model: Optional[PowerModel] = None,
                 backend: Optional[ExecutionBackend] = None) -> None:
        self.placement = placement
        self.config = config
        self.netlist = placement.netlist
        self.chip = placement.chip
        self.power_model = power_model or PowerModel(self.netlist,
                                                     config.tech)
        self.resistance = ResistanceModel(self.chip, config.tech)
        self.backend = backend
        # refreshed once per level:
        self._lateral_w = np.ones(self.netlist.num_nets)
        self._vertical_w = np.ones(self.netlist.num_nets)
        self._trr_w = np.zeros(self.netlist.num_cells)

    # ------------------------------------------------------------------
    def run(self) -> None:
        """Place all movable cells at their final region centres."""
        movable = [c.id for c in self.netlist.cells if c.movable]
        root = Region(cell_ids=movable, xlo=0.0, xhi=self.chip.width,
                      ylo=0.0, yhi=self.chip.height,
                      zlo=0, zhi=self.chip.num_layers - 1, path=1)
        backend = self.backend
        owned = backend is None
        if backend is None:
            backend = create_backend(self.config.num_workers)
        try:
            self._run_levels(root, backend)
        finally:
            if owned:
                backend.close()

    def _run_levels(self, root: Region,
                    backend: ExecutionBackend) -> None:
        """Frontier-parallel BFS over bisection levels.

        Each iteration handles one level: terminal regions are
        finalized in frontier order, the remaining regions become
        backend tasks dispatched as one batch, and the resulting
        children (positions set to their region centres) form the next
        frontier.  All placement reads and writes happen here on the
        dispatching side, in frontier order, so the backend never sees
        shared state.
        """
        rec = get_recorder()
        pool: Optional[SharedArrayPool] = None
        if backend.num_workers > 1 and shared_memory_available():
            pool = SharedArrayPool()
        try:
            frontier = [root]
            level = 0
            while frontier:
                _log.debug("bisection level %d: %d regions pending",
                           level, len(frontier))
                with rec.span("weights"):
                    self._refresh_weights()
                pending: List[Region] = []
                for region in frontier:
                    if self._is_terminal(region) or level >= _MAX_LEVELS:
                        rec.count("global/terminal_regions")
                        self._finalize(region)
                    else:
                        pending.append(region)
                frontier = []
                if not pending:
                    break
                with rec.span(f"level{level}/bisect"):
                    tasks = [self._build_task(region)
                             for region in pending]
                    results = self._dispatch(tasks, backend, pool, rec)
                    for region, (parts, telemetry) in zip(pending,
                                                          results):
                        rec.merge(telemetry)
                        rec.count("global/bisections")
                        for child in self._apply_parts(region, parts):
                            if child.cell_ids:
                                self._set_positions(child)
                                frontier.append(child)
                level += 1
        finally:
            if pool is not None:
                pool.close()

    def _dispatch(self, tasks: List[BisectionTask],
                  backend: ExecutionBackend,
                  pool: Optional[SharedArrayPool],
                  rec: Recorder) -> List[Tuple[np.ndarray, Telemetry]]:
        """Run one level's batch on the backend.

        With a shared-memory pool the batch is published once and each
        worker payload is a ~100-byte :class:`SegmentRef`; without one
        (serial backend, or no shm on this platform) tasks travel as
        dense pickled CSR payloads.  Both paths solve the identical
        task objects, so results are bit-identical either way.

        When telemetry is on, dispatch accounting is recorded either
        way: ``parallel/dispatch_bytes`` is what actually crossed the
        process boundary per path, and ``parallel/dense_task_bytes`` is
        what the pickled-CSR baseline would have shipped — the pair the
        scaling bench turns into a reduction ratio.
        """
        if pool is None:
            results = backend.map(solve_recorded, tasks)
            if rec.enabled and backend.num_workers > 1:
                dense = sum(len(pickle.dumps(t)) for t in tasks)
                rec.count("parallel/tasks", len(tasks))
                rec.count("parallel/dispatch_bytes", dense)
                rec.count("parallel/dense_task_bytes", dense)
            return results
        batch = pool.pack([task_payload(t) for t in tasks])
        try:
            results = backend.map(solve_packed_recorded, batch.refs)
        finally:
            batch.close()
        if rec.enabled:
            rec.count("parallel/tasks", len(tasks))
            rec.count("parallel/dispatch_bytes",
                      sum(len(pickle.dumps(r)) for r in batch.refs))
            rec.count("parallel/dense_task_bytes",
                      sum(len(pickle.dumps(t)) for t in tasks))
            rec.count("parallel/segment_bytes", batch.segment_bytes)
        return results

    # ------------------------------------------------------------------
    def _refresh_weights(self) -> None:
        """Recompute thermal net weights and TRR weights (per level)."""
        if not self.config.thermal_enabled:
            return
        self._lateral_w, self._vertical_w = self._net_weight_arrays()
        metrics = compute_net_metrics(self.placement)
        self._trr_w = compute_trr_weights(
            self.placement, self.config, self.power_model, metrics=metrics)

    def _net_weight_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        weights = compute_net_weights(self.placement, self.config,
                                      self.power_model, self.resistance)
        return weights.lateral, weights.vertical

    # ------------------------------------------------------------------
    def _is_terminal(self, region: Region) -> bool:
        return len(region.cell_ids) <= self.config.min_region_cells

    def _finalize(self, region: Region) -> None:
        """Commit final positions for a terminal region's cells.

        Cells go to the region's lateral centre; with multiple layers
        left, cells are distributed over the layers largest-first onto
        the least-filled layer, keeping per-layer area even.
        """
        cx = 0.5 * (region.xlo + region.xhi)
        cy = 0.5 * (region.ylo + region.yhi)
        if region.zlo == region.zhi:
            for cid in region.cell_ids:
                self.placement.x[cid] = cx
                self.placement.y[cid] = cy
                self.placement.z[cid] = region.zlo
            return
        areas = self.netlist.areas
        layers = list(range(region.zlo, region.zhi + 1))
        # rotate the tie-break start per region so ties do not all fall
        # on the lowest layer across the whole chip; the rotation comes
        # from the region's deterministic path id, so finalization is
        # independent of visit (and worker completion) order
        rot = region.path % len(layers)
        layers = layers[rot:] + layers[:rot]
        fill = {z: 0.0 for z in layers}
        for cid in sorted(region.cell_ids,
                          key=lambda c: -float(areas[c])):
            z = min(layers, key=lambda L: fill[L])
            fill[z] += float(areas[cid])
            self.placement.x[cid] = cx
            self.placement.y[cid] = cy
            self.placement.z[cid] = z

    def _set_positions(self, region: Region) -> None:
        cx, cy, cz = region.center
        for cid in region.cell_ids:
            self.placement.x[cid] = cx
            self.placement.y[cid] = cy
            self.placement.z[cid] = cz

    # ------------------------------------------------------------------
    def _choose_axis(self, region: Region) -> str:
        """Cut orthogonal to the largest of width / height / weighted
        depth (= layers * alpha_ilv)."""
        spans = {"x": region.width, "y": region.height, "z": 0.0}
        if region.layers > 1:
            spans["z"] = region.layers * self.config.alpha_ilv
        # deterministic tie-break in x, y, z order
        return max(_AXES, key=lambda a: spans[a])

    def _split(self, region: Region) -> List[Region]:
        """Bisect one region in-process; returns its two children.

        Equivalent to one build/solve/apply round trip on the serial
        backend — the unit the frontier dispatch batches.
        """
        return self._apply_parts(region, solve(self._build_task(region)))

    def _build_task(self, region: Region) -> BisectionTask:
        """Reduce one region to a self-contained bisection task.

        Reads the netlist, current positions (terminal propagation) and
        the level's weight arrays; everything the partitioner needs is
        copied into the payload, so solving is a pure function that can
        run in any process.  The task seed derives from the region's
        path id, never from a shared stream.
        """
        axis = self._choose_axis(region)
        if axis == "z" and region.layers == 1:
            raise AssertionError("z cut chosen on a single-layer region")
        cells = region.cell_ids
        local: Dict[int, int] = {cid: i for i, cid in enumerate(cells)}
        k = len(cells)
        areas = self.netlist.areas

        # provisional cut coordinate for terminal propagation
        z_mid = 0
        cut = 0.0
        if axis == "x":
            cut = 0.5 * (region.xlo + region.xhi)
        elif axis == "y":
            cut = 0.5 * (region.ylo + region.yhi)
        else:
            z_mid = (region.zlo + region.zhi) // 2  # last layer of child 0

        nets: List[List[int]] = []
        weights: List[float] = []
        terminal_of_side = {0: -1, 1: -1}
        vertex_weights = [float(areas[c]) for c in cells]
        fixed = [-1] * k

        def terminal(side: int) -> int:
            if terminal_of_side[side] < 0:
                terminal_of_side[side] = len(vertex_weights)
                vertex_weights.append(0.0)
                fixed.append(side)
            return terminal_of_side[side]

        px = self.placement.x
        py = self.placement.y
        pz = self.placement.z

        def side_of_external(cid: int) -> int:
            if axis == "x":
                return 0 if px[cid] <= cut else 1
            if axis == "y":
                return 0 if py[cid] <= cut else 1
            return 0 if pz[cid] <= z_mid else 1

        weight_arr = (self._vertical_w if axis == "z"
                      else self._lateral_w)
        seen = set()
        for cid in cells:
            for nid in self.netlist.nets_of_cell(cid):
                if nid in seen:
                    continue
                seen.add(nid)
                net = self.netlist.nets[nid]
                if net.is_trr:
                    continue
                internal = []
                ext_sides = set()
                for pc in net.unique_cell_ids:
                    li = local.get(pc)
                    if li is not None:
                        internal.append(li)
                    else:
                        ext_sides.add(side_of_external(pc))
                if len(ext_sides) == 2:
                    continue  # cut regardless of the partition: constant
                pins = list(internal)
                # sorted: terminal numbering follows iteration order,
                # and set order is arbitrary (determinism pass RPA103)
                for s in sorted(ext_sides):
                    pins.append(terminal(s))
                if len(pins) < 2:
                    continue
                weights.append(float(weight_arr[nid]))
                nets.append(pins)

        # TRR pulls toward the heat sink: only z cuts feel them.  Cut
        # costs on both net kinds scale with the height difference
        # between the child-region centres, so it cancels out of the
        # relative weights: a cut signal net costs ~alpha_ilv * nw_vert
        # per crossed layer pitch, a cut TRR net costs nw_cell (Eq. 12,
        # per metre of height) times the pitch — hence the pitch /
        # alpha_ilv normalization here.
        if axis == "z" and self.config.thermal_enabled \
                and self.config.use_trr_nets:
            scale = self.chip.layer_pitch / self.config.alpha_ilv
            for cid in cells:
                w = float(self._trr_w[cid])
                if w > 0.0:
                    nets.append([local[cid], terminal(0)])
                    weights.append(w * scale)

        # balance target and whitespace-derived tolerance
        if axis == "z":
            lower_layers = z_mid - region.zlo + 1
            target = lower_layers / region.layers
        else:
            target = 0.5
        capacity = (region.width * region.height * region.layers
                    / (1.0 + self.config.tech.inter_row_space))
        used = float(sum(vertex_weights))
        whitespace = max(0.0, 1.0 - used / capacity) if capacity > 0 else 0.0
        tolerance = max(self.config.min_partition_tolerance,
                        0.5 * whitespace)

        return BisectionTask.from_nets(
            nets, weights, vertex_weights, fixed,
            target=target, tolerance=tolerance,
            num_starts=self.config.partition_starts,
            max_passes=self.config.partition_passes,
            seed=task_seed(self.config.seed, region.path),
            key=region.path)

    def _apply_parts(self, region: Region,
                     parts: np.ndarray) -> List[Region]:
        """Turn a solved partition back into the region's two children."""
        axis = self._choose_axis(region)
        z_mid = ((region.zlo + region.zhi) // 2 if axis == "z" else 0)
        cells = region.cell_ids
        cells0 = [cid for i, cid in enumerate(cells) if parts[i] == 0]
        cells1 = [cid for i, cid in enumerate(cells) if parts[i] == 1]
        return self._child_regions(region, axis, cells0, cells1, z_mid)

    # ------------------------------------------------------------------
    def _child_regions(self, region: Region, axis: str,
                       cells0: List[int], cells1: List[int],
                       z_mid: int) -> List[Region]:
        """Build the two children, repositioning the lateral cut line so
        cell area is evenly distributed (Section 3)."""
        areas = self.netlist.areas
        a0 = float(sum(areas[c] for c in cells0))
        a1 = float(sum(areas[c] for c in cells1))
        total = a0 + a1
        frac = a0 / total if total > 0 else 0.5
        frac = min(max(frac, 0.05), 0.95)
        path0 = 2 * region.path
        path1 = 2 * region.path + 1
        if axis == "x":
            cut = region.xlo + frac * region.width
            child0 = Region(cells0, region.xlo, cut, region.ylo,
                            region.yhi, region.zlo, region.zhi,
                            path=path0)
            child1 = Region(cells1, cut, region.xhi, region.ylo,
                            region.yhi, region.zlo, region.zhi,
                            path=path1)
        elif axis == "y":
            cut = region.ylo + frac * region.height
            child0 = Region(cells0, region.xlo, region.xhi, region.ylo,
                            cut, region.zlo, region.zhi, path=path0)
            child1 = Region(cells1, region.xlo, region.xhi, cut,
                            region.yhi, region.zlo, region.zhi,
                            path=path1)
        else:
            child0 = Region(cells0, region.xlo, region.xhi, region.ylo,
                            region.yhi, region.zlo, int(z_mid),
                            path=path0)
            child1 = Region(cells1, region.xlo, region.xhi, region.ylo,
                            region.yhi, int(z_mid) + 1, region.zhi,
                            path=path1)
        return [child0, child1]
