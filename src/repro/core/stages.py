"""The stage registry: named, swappable pipeline stages.

A stage is a small object with a registry ``name`` and a
``run(ctx)`` method operating on a shared
:class:`~repro.core.context.PlacementContext`.  Stages register
themselves here with :func:`register_stage`; a
:class:`~repro.core.pipeline.PipelineSpec` refers to them purely by
name, so swapping the global placer for the quadratic or random
baseline — or inserting an experimental stage — is a spec edit, not a
driver edit.

Stage instances are created fresh for every invocation (once per round
for stages inside a repeat group) via :func:`create_stage`; they hold
no state between invocations.  Everything persistent lives in the
context.  Outside this module and the pipeline runner, instantiating a
stage class directly is a lint error (rule RPL010) — go through the
registry so specs, checkpoints and the CLI all see the same catalogue.

Registered stages:

============ ========================================================
``global``   recursive-bisection global placement (Section 3)
``quadratic`` clique-spring quadratic placement, a drop-in ``global``
             alternative (no legalization; downstream stages do that)
``random``   uniform random scatter, the floor baseline
``moves``    global+local greedy move/swap passes (Section 4.2)
``cellshift`` row-aware cell shifting (Section 4.1)
``detailed`` detailed legalization into rows (Section 5)
``refine``   legality-preserving post-optimization passes
============ ========================================================
"""

from __future__ import annotations

from typing import (Any, Callable, ClassVar, Dict, Mapping, Optional,
                    Tuple, Type, cast)

from repro.core.cellshift import CellShifter
from repro.core.context import PlacementContext
from repro.core.detailed import DetailedLegalizer
from repro.core.globalplace import GlobalPlacer
from repro.core.moves import MoveOptimizer
from repro.core.refine import LegalRefiner
from repro.netlist.placement import Placement
from repro.parallel import create_backend

__all__ = ["Stage", "available_stages", "create_stage", "get_stage",
           "register_stage"]


class Stage:
    """Base protocol for pipeline stages.

    Attributes:
        name: registry name; also the telemetry span the runner opens
            around :meth:`run`.
        needs_objective: whether the stage reads/writes the incremental
            :class:`~repro.core.objective.ObjectiveState`.  The runner
            materializes the objective (under its ``objective_build``
            span) before the first stage or repeat group that needs it.
    """

    name: ClassVar[str] = ""
    needs_objective: ClassVar[bool] = True

    def run(self, ctx: PlacementContext) -> None:
        """Execute the stage against the shared context."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<stage {self.name!r}>"


_REGISTRY: Dict[str, Type[Stage]] = {}


def register_stage(name: str) -> Callable[[Type[Stage]], Type[Stage]]:
    """Class decorator registering a stage under ``name``."""

    def wrap(cls: Type[Stage]) -> Type[Stage]:
        if name in _REGISTRY:
            raise ValueError(f"stage {name!r} already registered")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return wrap


def get_stage(name: str) -> Type[Stage]:
    """Look up a stage class by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown stage {name!r} (registered: {known})") from None


def available_stages() -> Tuple[str, ...]:
    """Sorted names of every registered stage."""
    return tuple(sorted(_REGISTRY))


def create_stage(name: str,
                 options: Optional[Mapping[str, Any]] = None) -> Stage:
    """Instantiate a registered stage with per-stage spec options.

    Raises:
        ValueError: unknown stage name, or options the stage's
            constructor rejects (reported with the stage name so a bad
            spec entry is easy to locate).
    """
    factory = cast(Callable[..., Stage], get_stage(name))
    try:
        return factory(**dict(options or {}))
    except TypeError as exc:
        raise ValueError(f"bad options for stage {name!r}: {exc}") from exc


# ----------------------------------------------------------------------
@register_stage("global")
class GlobalBisectionStage(Stage):
    """Recursive-bisection global placement (the paper's Section 3).

    Args:
        workers: overrides ``config.num_workers`` for this stage's
            execution backend when given (results are bit-identical
            for every worker count; see :mod:`repro.parallel`).
    """

    needs_objective = False

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = workers

    def run(self, ctx: PlacementContext) -> None:
        num_workers = (ctx.config.num_workers if self.workers is None
                       else int(self.workers))
        backend = create_backend(num_workers)
        try:
            GlobalPlacer(ctx.placement, ctx.config, ctx.power_model,
                         backend=backend).run()
        finally:
            backend.close()


@register_stage("quadratic")
class QuadraticGlobalStage(Stage):
    """Quadratic (force-directed) global placement alternative.

    Args:
        iterations: solve/spread rounds.
        tether: relative centre-tether weight (solvability without
            pads; see :class:`~repro.core.quadratic.QuadraticPlacer`).
    """

    needs_objective = False

    def __init__(self, iterations: int = 3, tether: float = 1e-3) -> None:
        self.iterations = int(iterations)
        self.tether = float(tether)

    def run(self, ctx: PlacementContext) -> None:
        # Imported here: quadratic.py needs the result type, which the
        # placer re-exports, and the registry must stay importable from
        # the placer without a cycle.
        from repro.core.quadratic import QuadraticPlacer
        placer = QuadraticPlacer(ctx.netlist, ctx.config, chip=ctx.chip,
                                 iterations=self.iterations,
                                 tether=self.tether)
        placer.place_global(ctx.placement)
        ctx.invalidate_objective()


@register_stage("random")
class RandomGlobalStage(Stage):
    """Uniform random scatter — the floor-baseline global stage."""

    needs_objective = False

    def run(self, ctx: PlacementContext) -> None:
        scattered = Placement.random(ctx.netlist, ctx.chip,
                                     seed=ctx.config.seed)
        ctx.placement.x[:] = scattered.x
        ctx.placement.y[:] = scattered.y
        ctx.placement.z[:] = scattered.z
        ctx.invalidate_objective()


@register_stage("moves")
class MovesStage(Stage):
    """Global then local greedy move/swap passes (Section 4.2).

    Args:
        passes: overrides ``config.move_passes`` when given.
    """

    def __init__(self, passes: Optional[int] = None) -> None:
        self.passes = passes

    def run(self, ctx: PlacementContext) -> None:
        passes = self.passes if self.passes is not None \
            else ctx.config.move_passes
        mover = MoveOptimizer(ctx.objective, ctx.config)
        for _ in range(max(1, passes)):
            mover.global_pass()
            mover.local_pass()


@register_stage("cellshift")
class CellShiftStage(Stage):
    """Row-aware cell shifting until densities approach one."""

    def run(self, ctx: PlacementContext) -> None:
        CellShifter(ctx.objective, ctx.config).run()


@register_stage("detailed")
class DetailedStage(Stage):
    """Detailed legalization into rows (Section 5)."""

    def run(self, ctx: PlacementContext) -> None:
        DetailedLegalizer(ctx.objective, ctx.config).run()


@register_stage("refine")
class RefineStage(Stage):
    """Legality-preserving post-optimization passes.

    Args:
        passes: overrides ``config.refine_passes`` when given.
    """

    def __init__(self, passes: Optional[int] = None) -> None:
        self.passes = passes

    def run(self, ctx: PlacementContext) -> None:
        passes = self.passes if self.passes is not None \
            else ctx.config.refine_passes
        if passes > 0:
            LegalRefiner(ctx.objective, ctx.config).run(passes)
