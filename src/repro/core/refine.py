"""Legality-preserving post-optimization (Section 4's closing remark).

The paper notes that "the coarse legalization methods can also be used
in conjunction with detailed legalization to iteratively improve an
existing placement during a post-optimization phase of detailed
placement if desired".  This module is that phase: it refines an
already-*legal* placement with moves that cannot create overlaps, so
the placement stays legal after every single operation:

- **Adjacent swaps** — two cells sitting next to each other in a row
  exchange order, preserving the pair's span (and hence everyone
  else's slots).
- **Equal-width swaps** — two cells of identical width anywhere on the
  chip exchange their (x, y, layer) slots outright; the paper's
  move/swap machinery restricted to the pairs for which a swap is
  trivially legal.
- **Gap moves** — a cell hops into a free interval of a nearby row
  that fits it.

All three are scored with the full objective (Eq. 3) and only strictly
improving operations are committed.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.config import PlacementConfig
from repro.core.detailed import RowSegments
from repro.core.objective import ObjectiveState
from repro.obs import get_recorder

RowKey = Tuple[int, int]


class LegalRefiner:
    """Iterative improvement of a legal placement.

    Args:
        objective: shared incremental objective; its placement must be
            legal (row-aligned, non-overlapping) when :meth:`run` is
            called.
        config: placement configuration.
        width_tolerance: relative width difference under which two cells
            count as "equal width" for slot swaps.
    """

    def __init__(self, objective: ObjectiveState,
                 config: PlacementConfig,
                 width_tolerance: float = 1e-9,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.objective = objective
        self.config = config
        self.placement = objective.placement
        self.netlist = self.placement.netlist
        self.chip = self.placement.chip
        self.width_tolerance = width_tolerance
        self._rng = (rng if rng is not None
                     else np.random.default_rng(config.seed + 7919))

    # ------------------------------------------------------------------
    def run(self, passes: int = 2) -> int:
        """Run refinement passes; returns total improving operations."""
        rec = get_recorder()
        total = 0
        for _ in range(max(1, passes)):
            adjacent = self._adjacent_swap_pass()
            equal_width = self._equal_width_swap_pass()
            gap = self._gap_move_pass()
            improved = adjacent + equal_width + gap
            if rec.enabled:
                rec.count("refine/passes")
                rec.count("refine/adjacent_swaps", float(adjacent))
                rec.count("refine/equal_width_swaps",
                          float(equal_width))
                rec.count("refine/gap_moves", float(gap))
            total += improved
            if improved == 0:
                break
        return total

    # ------------------------------------------------------------------
    def _rows(self) -> Dict[RowKey, List[Tuple[float, int]]]:
        """Current row occupancy: (layer, row) -> [(x_center, cid)]."""
        rows: Dict[RowKey, List[Tuple[float, int]]] = defaultdict(list)
        chip = self.chip
        for cid, x, y, z in self.placement.iter_movable():
            row = int(round((y - 0.5 * chip.row_height) / chip.row_pitch))
            rows[(z, row)].append((x, cid))
        for members in rows.values():
            members.sort()
        return rows

    def _row_y(self, row: int) -> float:
        return row * self.chip.row_pitch + 0.5 * self.chip.row_height

    # ------------------------------------------------------------------
    def _adjacent_swap_pass(self) -> int:
        """Swap neighbouring cells within rows when it helps.

        Two-phase batching: every adjacent pair of the snapshot rows is
        scored as two single-cell move candidates in one
        :meth:`ObjectiveState.eval_moves_batch` call.  The summed pair
        delta is the exact joint delta while the two cells share no net
        and neither's neighbourhood has been dirtied by earlier commits;
        otherwise the pair is re-evaluated scalar at its turn (with
        coordinates recomputed from the current row order).
        """
        improved = 0
        widths = self.netlist.widths
        rows = self._rows()
        cell_nets = self.objective.cell_nets

        # ---- phase 1: pair generation + one batched score ------------
        mv_cells: List[int] = []
        mv_xs: List[float] = []
        mv_ys: List[float] = []
        mv_zs: List[int] = []
        exact: List[bool] = []  # pair's cells share no net
        for (layer, row), members in rows.items():
            y = self._row_y(row)
            for i in range(len(members) - 1):
                (xa, a), (xb, b) = members[i], members[i + 1]
                wa = float(widths[a])
                wb = float(widths[b])
                lo = xa - 0.5 * wa
                gap = (xb - 0.5 * wb) - (xa + 0.5 * wa)
                mv_cells.append(a)
                mv_xs.append(lo + wb + gap + 0.5 * wa)
                mv_ys.append(y)
                mv_zs.append(layer)
                mv_cells.append(b)
                mv_xs.append(lo + 0.5 * wb)
                mv_ys.append(y)
                mv_zs.append(layer)
                exact.append(set(cell_nets(a)).isdisjoint(cell_nets(b)))
        if not mv_cells:
            return 0
        deltas = self.objective.eval_moves_batch(mv_cells, mv_xs, mv_ys,
                                                 mv_zs)

        # ---- phase 2: sequential apply with staleness tracking -------
        dirty: Set[int] = set()
        moved: Set[int] = set()
        p = 0
        for (layer, row), members in rows.items():
            y = self._row_y(row)
            i = 0
            while i + 1 < len(members):
                k = 2 * p
                p += 1
                (xa, a), (xb, b) = members[i], members[i + 1]
                i += 1
                clean = (exact[p - 1] and a not in moved
                         and b not in moved
                         and dirty.isdisjoint(cell_nets(a))
                         and dirty.isdisjoint(cell_nets(b)))
                if clean:
                    if deltas[k] + deltas[k + 1] >= -1e-18:
                        continue
                    moves = [(a, mv_xs[k], y, layer),
                             (b, mv_xs[k + 1], y, layer)]
                else:
                    wa = float(widths[a])
                    wb = float(widths[b])
                    lo = xa - 0.5 * wa
                    gap = (xb - 0.5 * wb) - (xa + 0.5 * wa)
                    moves = [(a, lo + wb + gap + 0.5 * wa, y, layer),
                             (b, lo + 0.5 * wb, y, layer)]
                    if self.objective.eval_moves(moves) >= -1e-18:
                        continue
                self.objective.apply_moves(moves)
                members[i - 1] = (moves[1][1], b)
                members[i] = (moves[0][1], a)
                moved.add(a)
                moved.add(b)
                dirty.update(cell_nets(a))
                dirty.update(cell_nets(b))
                improved += 1
        return improved

    # ------------------------------------------------------------------
    def _equal_width_swap_pass(self, candidates_per_cell: int = 6) -> int:
        """Swap same-width cells across the whole chip.

        Two-phase batching: every cell's nearest same-width peers are
        collected against a snapshot of the placement and scored in one
        :meth:`ObjectiveState.eval_swaps_batch` call; promising swaps
        are then re-evaluated scalar (the state has moved on by the
        time their turn comes) and committed only if still improving.
        """
        improved = 0
        widths = self.netlist.widths
        placement = self.placement
        # width-bucketed index of movable cells
        buckets: Dict[int, List[int]] = defaultdict(list)
        quantum = max(float(widths.max()) * self.width_tolerance, 1e-12)

        def bucket_of(w: float) -> int:
            return int(round(w / max(quantum, 1e-30)))

        movable = [c.id for c in self.netlist.cells if c.movable]
        for cid in movable:
            buckets[bucket_of(float(widths[cid]))].append(cid)
        peer_arrays = {b: np.asarray(m, dtype=np.int64)
                       for b, m in buckets.items()}

        order = [int(c) for c in self._rng.permutation(movable)]
        centers = self.objective.optimal_region_centers(order)
        cand_a: List[int] = []
        cand_b: List[int] = []
        spans: Dict[int, Tuple[int, int]] = {}
        for idx, cid in enumerate(order):
            b = bucket_of(float(widths[cid]))
            peers = peer_arrays[b]
            if len(peers) < 2:
                continue
            ox, oy = centers[0, idx], centers[1, idx]
            dist = (np.abs(placement.x[peers] - ox)
                    + np.abs(placement.y[peers] - oy))
            dist = np.where(peers == cid, np.inf, dist)
            k = min(candidates_per_cell, len(peers) - 1)
            near = peers[np.argsort(dist, kind="stable")[:k]]
            others = [int(p) for p in near
                      if abs(widths[p] - widths[cid]) <= quantum]
            if not others:
                continue
            spans[cid] = (len(cand_a), len(cand_a) + len(others))
            cand_a.extend([cid] * len(others))
            cand_b.extend(others)
        if not cand_a:
            return 0
        deltas = self.objective.eval_swaps_batch(cand_a, cand_b)
        dirty: Set[int] = set()
        moved: Set[int] = set()
        cell_nets = self.objective.cell_nets
        for cid in order:
            span = spans.get(cid)
            if span is None:
                continue
            lo, hi = span
            k = lo + int(np.argmin(deltas[lo:hi]))
            if deltas[k] >= -1e-18:
                continue
            other = cand_b[k]
            moves = [
                (cid, float(placement.x[other]),
                 float(placement.y[other]), int(placement.z[other])),
                (other, float(placement.x[cid]),
                 float(placement.y[cid]), int(placement.z[cid])),
            ]
            # the batched delta is exact while both cells' spots and
            # incident nets are untouched; otherwise re-check scalar
            # against the current state
            clean = (cid not in moved and other not in moved
                     and dirty.isdisjoint(cell_nets(cid))
                     and dirty.isdisjoint(cell_nets(other)))
            if not clean and self.objective.eval_moves(moves) >= -1e-18:
                continue
            self.objective.apply_moves(moves)
            moved.add(cid)
            moved.add(other)
            dirty.update(cell_nets(cid))
            dirty.update(cell_nets(other))
            improved += 1
        return improved

    # ------------------------------------------------------------------
    def _gap_move_pass(self, row_radius: int = 2) -> int:
        """Move cells into nearby free row intervals when it helps.

        Two-phase batching like :meth:`_equal_width_swap_pass`: slot
        candidates for every cell are collected against the starting
        row occupancy and scored in one batched call; a winning
        candidate's row is re-queried and the move re-evaluated scalar
        at its turn, since earlier commits may have claimed the gap.
        """
        improved = 0
        widths = self.netlist.widths
        placement = self.placement
        chip = self.chip
        segments = RowSegments(placement)
        locations: Dict[int, Tuple[int, int]] = {}
        for (layer, row), members in self._rows().items():
            for x, cid in members:
                segments.insert(layer, row, cid, x, float(widths[cid]))
                locations[cid] = (layer, row)

        movable = [c.id for c in self.netlist.cells if c.movable]
        order = [int(c) for c in self._rng.permutation(movable)]
        cand_cells: List[int] = []
        cand_slots: List[Tuple[float, float, int, int]] = []
        spans: Dict[int, Tuple[int, int]] = {}
        for cid in order:
            w = float(widths[cid])
            layer0, row0 = locations[cid]
            x0 = float(placement.x[cid])
            start = len(cand_slots)
            for layer in range(chip.num_layers):
                for row in range(max(0, row0 - row_radius),
                                 min(chip.rows_per_layer,
                                     row0 + row_radius + 1)):
                    if (layer, row) == (layer0, row0):
                        continue
                    slot = segments.nearest_slot(layer, row, x0, w)
                    if slot is None:
                        continue
                    cand_slots.append((slot, self._row_y(row), layer,
                                       row))
                    cand_cells.append(cid)
            if len(cand_slots) > start:
                spans[cid] = (start, len(cand_slots))
        if not cand_slots:
            return 0
        deltas = self.objective.eval_moves_batch(
            cand_cells, [c[0] for c in cand_slots],
            [c[1] for c in cand_slots], [c[2] for c in cand_slots])

        dirty: Set[int] = set()
        rows_touched: Set[Tuple[int, int]] = set()
        cell_nets = self.objective.cell_nets
        for cid in order:
            span = spans.get(cid)
            if span is None:
                continue
            lo, hi = span
            k = lo + int(np.argmin(deltas[lo:hi]))
            if deltas[k] >= -1e-18:
                continue
            slot, y, layer, row = cand_slots[k]
            w = float(widths[cid])
            if (layer, row) in rows_touched:
                # the gap may have been taken by an earlier commit:
                # re-query the row
                slot = segments.nearest_slot(layer, row,
                                             float(placement.x[cid]), w)
                if slot is None:
                    continue
            move = [(cid, slot, y, layer)]
            # the batched delta stays exact while the cell's nets and
            # the target row are untouched; otherwise re-check scalar
            clean = ((layer, row) not in rows_touched
                     and dirty.isdisjoint(cell_nets(cid)))
            if not clean and self.objective.eval_moves(move) >= -1e-18:
                continue
            layer0, row0 = locations[cid]
            segments.remove(layer0, row0, cid)
            self.objective.apply_moves(move)
            segments.insert(layer, row, cid, slot, w)
            locations[cid] = (layer, row)
            rows_touched.add((layer0, row0))
            rows_touched.add((layer, row))
            dirty.update(cell_nets(cid))
            improved += 1
        return improved
