"""Legality-preserving post-optimization (Section 4's closing remark).

The paper notes that "the coarse legalization methods can also be used
in conjunction with detailed legalization to iteratively improve an
existing placement during a post-optimization phase of detailed
placement if desired".  This module is that phase: it refines an
already-*legal* placement with moves that cannot create overlaps, so
the placement stays legal after every single operation:

- **Adjacent swaps** — two cells sitting next to each other in a row
  exchange order, preserving the pair's span (and hence everyone
  else's slots).
- **Equal-width swaps** — two cells of identical width anywhere on the
  chip exchange their (x, y, layer) slots outright; the paper's
  move/swap machinery restricted to the pairs for which a swap is
  trivially legal.
- **Gap moves** — a cell hops into a free interval of a nearby row
  that fits it.

All three are scored with the full objective (Eq. 3) and only strictly
improving operations are committed.
"""

from __future__ import annotations

import bisect as _bisect
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import PlacementConfig
from repro.core.detailed import RowSegments, check_legal
from repro.core.objective import ObjectiveState

RowKey = Tuple[int, int]


class LegalRefiner:
    """Iterative improvement of a legal placement.

    Args:
        objective: shared incremental objective; its placement must be
            legal (row-aligned, non-overlapping) when :meth:`run` is
            called.
        config: placement configuration.
        width_tolerance: relative width difference under which two cells
            count as "equal width" for slot swaps.
    """

    def __init__(self, objective: ObjectiveState,
                 config: PlacementConfig,
                 width_tolerance: float = 1e-9):
        self.objective = objective
        self.config = config
        self.placement = objective.placement
        self.netlist = self.placement.netlist
        self.chip = self.placement.chip
        self.width_tolerance = width_tolerance
        self._rng = np.random.default_rng(config.seed + 7919)

    # ------------------------------------------------------------------
    def run(self, passes: int = 2) -> int:
        """Run refinement passes; returns total improving operations."""
        total = 0
        for _ in range(max(1, passes)):
            improved = 0
            improved += self._adjacent_swap_pass()
            improved += self._equal_width_swap_pass()
            improved += self._gap_move_pass()
            total += improved
            if improved == 0:
                break
        return total

    # ------------------------------------------------------------------
    def _rows(self) -> Dict[RowKey, List[Tuple[float, int]]]:
        """Current row occupancy: (layer, row) -> [(x_center, cid)]."""
        rows: Dict[RowKey, List[Tuple[float, int]]] = defaultdict(list)
        chip = self.chip
        for cid, x, y, z in self.placement.iter_movable():
            row = int(round((y - 0.5 * chip.row_height) / chip.row_pitch))
            rows[(z, row)].append((x, cid))
        for members in rows.values():
            members.sort()
        return rows

    def _row_y(self, row: int) -> float:
        return row * self.chip.row_pitch + 0.5 * self.chip.row_height

    # ------------------------------------------------------------------
    def _adjacent_swap_pass(self) -> int:
        """Swap neighbouring cells within rows when it helps."""
        improved = 0
        widths = self.netlist.widths
        placement = self.placement
        for (layer, row), members in self._rows().items():
            y = self._row_y(row)
            i = 0
            while i + 1 < len(members):
                (xa, a), (xb, b) = members[i], members[i + 1]
                wa = float(widths[a])
                wb = float(widths[b])
                lo = xa - 0.5 * wa
                gap = (xb - 0.5 * wb) - (xa + 0.5 * wa)
                new_b = lo + 0.5 * wb
                new_a = lo + wb + gap + 0.5 * wa
                moves = [(a, new_a, y, layer), (b, new_b, y, layer)]
                if self.objective.eval_moves(moves) < -1e-18:
                    self.objective.apply_moves(moves)
                    members[i] = (new_b, b)
                    members[i + 1] = (new_a, a)
                    improved += 1
                i += 1
        return improved

    # ------------------------------------------------------------------
    def _equal_width_swap_pass(self, candidates_per_cell: int = 6) -> int:
        """Swap same-width cells across the whole chip."""
        improved = 0
        widths = self.netlist.widths
        placement = self.placement
        # width-bucketed index of movable cells
        buckets: Dict[int, List[int]] = defaultdict(list)
        quantum = max(float(widths.max()) * self.width_tolerance, 1e-12)

        def bucket_of(w: float) -> int:
            return int(round(w / max(quantum, 1e-30)))

        movable = [c.id for c in self.netlist.cells if c.movable]
        for cid in movable:
            buckets[bucket_of(float(widths[cid]))].append(cid)

        for cid in self._rng.permutation(movable):
            cid = int(cid)
            peers = buckets[bucket_of(float(widths[cid]))]
            if len(peers) < 2:
                continue
            ox, oy, oz = self.objective.optimal_region_center(cid)
            # the few peers nearest the optimal spot
            scored = sorted(
                (abs(float(placement.x[p]) - ox)
                 + abs(float(placement.y[p]) - oy), p)
                for p in peers if p != cid)[:candidates_per_cell]
            best = None
            for _, other in scored:
                if abs(widths[other] - widths[cid]) > quantum:
                    continue
                moves = [
                    (cid, float(placement.x[other]),
                     float(placement.y[other]), int(placement.z[other])),
                    (other, float(placement.x[cid]),
                     float(placement.y[cid]), int(placement.z[cid])),
                ]
                delta = self.objective.eval_moves(moves)
                if delta < -1e-18 and (best is None or delta < best[0]):
                    best = (delta, moves)
            if best is not None:
                self.objective.apply_moves(best[1])
                improved += 1
        return improved

    # ------------------------------------------------------------------
    def _gap_move_pass(self, row_radius: int = 2) -> int:
        """Move cells into nearby free row intervals when it helps."""
        improved = 0
        widths = self.netlist.widths
        placement = self.placement
        chip = self.chip
        segments = RowSegments(placement)
        locations: Dict[int, Tuple[int, int]] = {}
        for (layer, row), members in self._rows().items():
            for x, cid in members:
                segments.insert(layer, row, cid, x, float(widths[cid]))
                locations[cid] = (layer, row)

        movable = [c.id for c in self.netlist.cells if c.movable]
        for cid in self._rng.permutation(movable):
            cid = int(cid)
            w = float(widths[cid])
            layer0, row0 = locations[cid]
            x0 = float(placement.x[cid])
            best = None
            for layer in range(chip.num_layers):
                for row in range(max(0, row0 - row_radius),
                                 min(chip.rows_per_layer,
                                     row0 + row_radius + 1)):
                    if (layer, row) == (layer0, row0):
                        continue
                    slot = segments.nearest_slot(layer, row, x0, w)
                    if slot is None:
                        continue
                    y = self._row_y(row)
                    move = [(cid, slot, y, layer)]
                    delta = self.objective.eval_moves(move)
                    if delta < -1e-18 and (best is None
                                           or delta < best[0]):
                        best = (delta, move, layer, row, slot)
            if best is not None:
                _, move, layer, row, slot = best
                # vacate the old interval, claim the new one
                key = (layer0, row0)
                starts = segments._starts[key]
                ends = segments._ends[key]
                cids = segments._cids[key]
                idx = cids.index(cid)
                del starts[idx], ends[idx], cids[idx]
                self.objective.apply_moves(move)
                segments.insert(layer, row, cid, slot, w)
                locations[cid] = (layer, row)
                improved += 1
        return improved
