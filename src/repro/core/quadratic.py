"""Quadratic (force-directed) baseline placer.

The paper's introduction argues that partitioning suits 3D placement
better than the force-directed paradigm because quadratic placers "rely
on an encompassing arrangement of IO pads ... to produce a well-spread
initial placement" [4].  This module implements that paradigm so the
claim can be tested empirically (see
``benchmarks/bench_ext_forcedirected.py``):

1. every net becomes a clique of springs with weight ``1/(p-1)``;
2. the quadratic system ``L x = b`` is solved per axis (fixed pads
   enter the right-hand side; without pads the system is singular and
   only a weak centre tether keeps it solvable — which is precisely the
   degenerate collapse the paper warns about);
3. rank-based spreading stretches the solution over the die, a few
   anchor-pull iterations alternate solve and spread;
4. the continuous z solution is quantized to layers, and the shared
   :class:`~repro.core.detailed.DetailedLegalizer` produces the final
   legal placement.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.sparse import coo_matrix, csr_matrix
from scipy.sparse.linalg import spsolve

from repro.core.config import PlacementConfig
from repro.core.detailed import DetailedLegalizer
from repro.core.objective import ObjectiveState
from repro.core.result import PlacementResult
from repro.geometry.chip import ChipGeometry
from repro.netlist.netlist import Netlist
from repro.netlist.placement import Placement
from repro.obs import Stopwatch


class QuadraticPlacer:
    """Clique-model quadratic placement with rank spreading.

    Args:
        netlist: circuit to place; fixed cells act as pad anchors.
        config: shared placement configuration (the via coefficient
            scales the z-direction spring stiffness).
        chip: placement volume (auto-sized if omitted).
        iterations: solve/spread rounds.
        tether: relative weight of the centre tether applied to every
            movable cell; needed for solvability when no pads exist and
            deliberately weak so pad-driven spreading dominates when
            pads do exist.
    """

    def __init__(self, netlist: Netlist, config: PlacementConfig,
                 chip: Optional[ChipGeometry] = None,
                 iterations: int = 3, tether: float = 1e-3) -> None:
        from repro.core.baseline import _auto_chip
        self.netlist = netlist
        self.config = config
        self.chip = chip or _auto_chip(netlist, config)
        self.iterations = iterations
        self.tether = tether

    # ------------------------------------------------------------------
    def place_global(self, placement: Placement) -> None:
        """Solve, spread and quantize layers into ``placement``.

        The global-placement half of :meth:`run`, without the final
        legalization — this is what the ``quadratic`` pipeline stage
        calls, leaving legalization to the downstream stages.
        """
        netlist = self.netlist
        chip = self.chip
        movable = [c.id for c in netlist.cells if c.movable]
        index = {cid: i for i, cid in enumerate(movable)}
        if not movable:
            return
        x, y, z = self._solve_all(index, placement)
        for it in range(max(1, self.iterations) - 1):
            x = _rank_spread(x, 0.0, chip.width)
            y = _rank_spread(y, 0.0, chip.height)
            # re-solve with spread positions as soft anchors
            x, y, z = self._solve_all(index, placement,
                                      anchors=(x, y, z))
        x = _rank_spread(x, 0.0, chip.width)
        y = _rank_spread(y, 0.0, chip.height)
        layers = self._quantize_layers(z)
        for cid, i in index.items():
            placement.x[cid] = x[i]
            placement.y[cid] = y[i]
            placement.z[cid] = layers[i]

    def run(self) -> PlacementResult:
        """Solve, spread, quantize layers and legalize."""
        watch = Stopwatch()
        placement = Placement.at_center(self.netlist, self.chip)
        self.place_global(placement)
        objective = ObjectiveState(placement, self.config)
        DetailedLegalizer(objective, self.config).run()
        runtime = watch.elapsed()
        return PlacementResult(
            placement=placement,
            objective=objective.total,
            wirelength=objective.wirelength(),
            ilv=objective.total_ilv(),
            runtime_seconds=runtime,
            stage_seconds={"quadratic+legalize": runtime})

    # ------------------------------------------------------------------
    def _solve_all(self, index: Dict[int, int], placement: Placement,
                   anchors: Optional[Tuple[np.ndarray, np.ndarray,
                                           np.ndarray]] = None
                   ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        chip = self.chip
        x = self._solve_axis(index, placement.x, placement,
                             0.5 * chip.width, "lateral",
                             anchors[0] if anchors else None)
        y = self._solve_axis(index, placement.y, placement,
                             0.5 * chip.height, "lateral",
                             anchors[1] if anchors else None)
        z_phys = placement.z.astype(float) * chip.layer_pitch
        z = self._solve_axis(index, z_phys, placement,
                             0.5 * (chip.num_layers - 1)
                             * chip.layer_pitch, "vertical",
                             anchors[2] if anchors else None)
        return x, y, z

    def _solve_axis(self, index: Dict[int, int],
                    coords: np.ndarray, placement: Placement,
                    center: float, direction: str,
                    anchor: Optional[np.ndarray]) -> np.ndarray:
        """Solve one axis of the clique-spring system."""
        n = len(index)
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        diag = np.zeros(n)
        rhs = np.zeros(n)

        def add_edge(a: Optional[int], b: Optional[int], w: float,
                     pos_a: float, pos_b: float) -> None:
            # a/b are movable indices or None for fixed endpoints
            if a is not None and b is not None:
                rows.extend((a, b))
                cols.extend((b, a))
                vals.extend((-w, -w))
                diag[a] += w
                diag[b] += w
            elif a is not None:
                diag[a] += w
                rhs[a] += w * pos_b
            elif b is not None:
                diag[b] += w
                rhs[b] += w * pos_a

        for net in self.netlist.nets:
            if net.is_trr:
                continue
            ids = net.unique_cell_ids
            if len(ids) < 2:
                continue
            w = 1.0 / (len(ids) - 1)
            if direction == "vertical":
                # stiffer vertical springs when vias are cheap, softer
                # when alpha_ilv prices them high
                w *= min(1.0, 1e-5 / self.config.alpha_ilv)
            for i_pos in range(len(ids)):
                for j_pos in range(i_pos + 1, len(ids)):
                    ca, cb = ids[i_pos], ids[j_pos]
                    add_edge(index.get(ca), index.get(cb), w,
                             float(coords[ca]), float(coords[cb]))

        # weak tether: solvability without pads (the collapse mode the
        # paper describes is visible because this is deliberately weak)
        base = max(diag.max(), 1.0) if n else 1.0
        tether_w = self.tether * base
        diag += tether_w
        if anchor is not None:
            rhs += tether_w * anchor
        else:
            rhs += tether_w * center

        rows.extend(range(n))
        cols.extend(range(n))
        vals.extend(diag.tolist())
        matrix = coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
        return spsolve(matrix, rhs)

    def _quantize_layers(self, z_phys: np.ndarray) -> np.ndarray:
        """Round the continuous vertical solution to balanced layers."""
        chip = self.chip
        if chip.num_layers == 1:
            return np.zeros(len(z_phys), dtype=np.int64)
        order = np.argsort(z_phys)
        layers = np.empty(len(z_phys), dtype=np.int64)
        per_layer = int(np.ceil(len(z_phys) / chip.num_layers))
        for rank, idx in enumerate(order):
            layers[idx] = min(rank // max(per_layer, 1),
                              chip.num_layers - 1)
        return layers


def _rank_spread(values: np.ndarray, lo: float, hi: float) -> np.ndarray:
    """Spread values over ``[lo, hi]`` preserving order (rank mapping).

    The classic cheap spreading step: the sorted positions are replaced
    by an even grid, erasing clumps while keeping relative order.
    """
    n = len(values)
    if n == 0:
        return values
    order = np.argsort(values, kind="stable")
    spread = np.empty(n)
    span = hi - lo
    for rank, idx in enumerate(order):
        spread[idx] = lo + (rank + 0.5) / n * span
    return spread
