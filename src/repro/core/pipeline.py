"""Declarative stage pipeline: spec, runner, checkpoint boundaries.

The placement flow is described by a :class:`PipelineSpec` — an ordered
list of entries, each either a single :class:`StageEntry` (a registry
name plus per-stage options) or a :class:`RepeatEntry` grouping stages
into repeated coarse+detailed rounds with the best-snapshot/restore
policy the paper's Section 7 effort knob relies on.  The
:class:`PlacementPipeline` runner executes a spec against a shared
:class:`~repro.core.context.PlacementContext`, opening the same
telemetry spans the monolithic ``Placer3D.run()`` used to hardwire
(``global``, ``objective_build``, ``round1/moves`` …), so manifests,
stage summaries and the benchmark harness see an unchanged tree.

Every executed **unit** (a stage, a round's bookkeeping, a group's
best-restore) is a checkpoint boundary: with a checkpoint directory
configured, the runner serializes the context after each unit and can
later resume, skipping completed units and reproducing the
uninterrupted run bit-identically (see :mod:`repro.core.checkpoint`).

Spec JSON is a plain document, editable by hand and loadable with
``--pipeline SPEC.json``::

    {"pipeline": [
        {"stage": "quadratic", "options": {"iterations": 4}},
        {"repeat": {"rounds": 2, "stages": [
            {"stage": "moves"}, {"stage": "cellshift"},
            {"stage": "detailed"}, {"stage": "refine"}]}}
    ]}
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import (Any, Callable, Dict, Iterator, List, Mapping, Optional,
                    Sequence, Tuple, Union)

import json

from repro.core import checkpoint as ckpt
from repro.core.config import PlacementConfig
from repro.core.context import PlacementContext
from repro.core.stages import create_stage, get_stage
from repro.obs import get_logger
from repro.obs.trace import SpanStats

__all__ = ["PipelineHalted", "PipelinePreempted", "PipelineSpec",
           "PlacementPipeline", "RepeatEntry", "StageEntry",
           "default_pipeline_spec", "stage_summary"]

_log = get_logger(__name__)


class PipelineHalted(RuntimeError):
    """Raised when the runner stops at a requested boundary.

    Attributes:
        unit: the unit label the run halted after.
        directory: the checkpoint directory holding the saved state.
    """

    def __init__(self, unit: str, directory: Optional[str]) -> None:
        super().__init__(
            f"pipeline halted after {unit!r}"
            + (f"; checkpoint at {directory}" if directory else ""))
        self.unit = unit
        self.directory = directory


class PipelinePreempted(PipelineHalted):
    """Raised when the cooperative preemption hook requested a stop.

    A subclass of :class:`PipelineHalted` — both stop at a unit
    boundary *after* the checkpoint for that unit was saved, so the run
    is resumable bit-identically.  Preemption differs only in who asked:
    the scheduler's ``preempt`` callable rather than a ``halt_after``
    label.
    """


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StageEntry:
    """One pipeline step: a registered stage name plus options.

    Attributes:
        stage: registry name (see :mod:`repro.core.stages`).
        options: keyword options for the stage constructor; must be
            JSON-safe so specs round-trip.
    """

    stage: str
    options: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        get_stage(self.stage)  # fail fast on unknown names

    @property
    def needs_objective(self) -> bool:
        """Whether this stage operates on the incremental objective."""
        return get_stage(self.stage).needs_objective

    def to_dict(self) -> Dict[str, Any]:
        """JSON form (``options`` omitted when empty)."""
        out: Dict[str, Any] = {"stage": self.stage}
        if self.options:
            out["options"] = dict(self.options)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StageEntry":
        """Inverse of :meth:`to_dict`, rejecting unknown keys."""
        unknown = sorted(set(data) - {"stage", "options"})
        if unknown:
            raise ValueError(f"unknown stage-entry keys: {unknown}")
        if "stage" not in data:
            raise ValueError("stage entry needs a 'stage' name")
        options = data.get("options", {})
        if not isinstance(options, Mapping):
            raise ValueError("stage options must be an object")
        return cls(stage=str(data["stage"]), options=dict(options))


@dataclass(frozen=True)
class RepeatEntry:
    """A repeated group of stages (the coarse+detailed rounds).

    Attributes:
        stages: the stages run once per round, in order.
        rounds: how many rounds to run (>= 1).
        snapshot_best: track the best post-round objective snapshot and
            restore it after the last round if the final state is worse
            — the policy previously inlined in ``Placer3D.run()`` (the
            move/swap phase deliberately un-legalizes, so rounds are
            not monotone).
    """

    stages: Tuple[StageEntry, ...]
    rounds: int = 1
    snapshot_best: bool = True

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError("repeat rounds must be >= 1")
        if not self.stages:
            raise ValueError("repeat group needs at least one stage")

    @property
    def needs_objective(self) -> bool:
        """Whether any stage in the group needs the objective.

        The snapshot policy reads the objective too, so a repeat group
        always materializes it before its first round span opens —
        matching the historical ``objective_build`` span position.
        """
        return True

    def to_dict(self) -> Dict[str, Any]:
        """JSON form."""
        return {"repeat": {
            "rounds": self.rounds,
            "snapshot_best": self.snapshot_best,
            "stages": [s.to_dict() for s in self.stages],
        }}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RepeatEntry":
        """Inverse of :meth:`to_dict`, rejecting unknown keys."""
        unknown = sorted(set(data)
                         - {"rounds", "snapshot_best", "stages"})
        if unknown:
            raise ValueError(f"unknown repeat-group keys: {unknown}")
        stages = data.get("stages")
        if not isinstance(stages, Sequence) or isinstance(stages, str):
            raise ValueError("repeat group needs a 'stages' list")
        return cls(
            stages=tuple(StageEntry.from_dict(s) for s in stages),
            rounds=int(data.get("rounds", 1)),
            snapshot_best=bool(data.get("snapshot_best", True)))


Entry = Union[StageEntry, RepeatEntry]


@dataclass(frozen=True)
class PipelineSpec:
    """An ordered, serializable description of a placement run."""

    entries: Tuple[Entry, ...]

    def __post_init__(self) -> None:
        if not self.entries:
            raise ValueError("pipeline spec needs at least one entry")

    # -- derived views -------------------------------------------------
    @property
    def total_rounds(self) -> int:
        """Rounds across all repeat groups (for ``round N/M`` logs)."""
        return sum(e.rounds for e in self.entries
                   if isinstance(e, RepeatEntry))

    def top_stage_names(self) -> List[str]:
        """Names of stages that run outside any repeat group."""
        return [e.stage for e in self.entries
                if isinstance(e, StageEntry)]

    def round_stage_names(self) -> List[str]:
        """Stage names that appear inside repeat groups, in order,
        deduplicated — the spec-derived replacement for the historical
        hardcoded ``ROUND_STAGES`` tuple."""
        seen: List[str] = []
        for entry in self.entries:
            if isinstance(entry, RepeatEntry):
                for stage in entry.stages:
                    if stage.stage not in seen:
                        seen.append(stage.stage)
        return seen

    def units(self) -> List[str]:
        """Every checkpoint-boundary unit label, in execution order.

        Labels are ``{entry_index}:{name}`` for top-level stages,
        ``{entry_index}:round{R}/{name}`` for stages inside a repeat
        group (``R`` counts rounds globally across groups, matching
        the ``roundR`` telemetry spans), ``…/end`` for a round's
        bookkeeping and ``{entry_index}:end`` for a group's
        best-restore.
        """
        labels: List[str] = []
        round_no = 0
        for idx, entry in enumerate(self.entries):
            if isinstance(entry, StageEntry):
                labels.append(f"{idx}:{entry.stage}")
                continue
            for _ in range(entry.rounds):
                round_no += 1
                labels.extend(f"{idx}:round{round_no}/{s.stage}"
                              for s in entry.stages)
                labels.append(f"{idx}:round{round_no}/end")
            labels.append(f"{idx}:end")
        return labels

    # -- serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON form: ``{"pipeline": [entry, ...]}``."""
        return {"pipeline": [e.to_dict() for e in self.entries]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PipelineSpec":
        """Inverse of :meth:`to_dict`, rejecting unknown keys."""
        unknown = sorted(set(data) - {"pipeline"})
        if unknown:
            raise ValueError(f"unknown pipeline-spec keys: {unknown}")
        entries_data = data.get("pipeline")
        if not isinstance(entries_data, Sequence) \
                or isinstance(entries_data, str):
            raise ValueError("pipeline spec needs a 'pipeline' list")
        entries: List[Entry] = []
        for item in entries_data:
            if not isinstance(item, Mapping):
                raise ValueError("pipeline entries must be objects")
            if "repeat" in item:
                extra = sorted(set(item) - {"repeat"})
                if extra:
                    raise ValueError(
                        f"unknown keys next to 'repeat': {extra}")
                repeat = item["repeat"]
                if not isinstance(repeat, Mapping):
                    raise ValueError("'repeat' must be an object")
                entries.append(RepeatEntry.from_dict(repeat))
            else:
                entries.append(StageEntry.from_dict(item))
        return cls(entries=tuple(entries))

    @classmethod
    def from_json_file(cls, path: Union[str, Path]) -> "PipelineSpec":
        """Load a spec from a JSON file (the CLI's ``--pipeline``)."""
        with open(str(path), "r", encoding="utf-8") as fh:
            data = json.load(fh)
        if not isinstance(data, Mapping):
            raise ValueError(f"{path} is not a JSON object")
        return cls.from_dict(data)


def default_pipeline_spec(config: PlacementConfig) -> PipelineSpec:
    """The paper's flow, derived from the config's effort knobs.

    Global recursive bisection, then ``legalization_rounds`` rounds of
    moves → cell shifting → detailed legalization (→ refinement when
    ``refine_passes`` > 0), with best-snapshot/restore across rounds.
    This is exactly the sequence ``Placer3D.run()`` used to hardwire.
    """
    round_stages: List[StageEntry] = [
        StageEntry("moves"), StageEntry("cellshift"),
        StageEntry("detailed")]
    if config.refine_passes > 0:
        round_stages.append(StageEntry("refine"))
    return PipelineSpec(entries=(
        StageEntry("global"),
        RepeatEntry(stages=tuple(round_stages),
                    rounds=max(1, config.legalization_rounds)),
    ))


# ----------------------------------------------------------------------
def stage_summary(place_node: SpanStats, spec: PipelineSpec,
                  ) -> Tuple[Dict[str, float], List[Dict[str, float]]]:
    """Derive the flat and per-round stage timing views from the spec.

    Args:
        place_node: the ``place`` span (the run root).
        spec: the spec that produced the span tree; its stage names —
            not a hardcoded list — decide which children are read.

    Returns:
        ``(stage_seconds, round_seconds)`` where ``stage_seconds`` sums
        each stage across rounds (round boundaries collapsed, matching
        the historical dict) and ``round_seconds`` keeps them separate.
    """
    stage_seconds: Dict[str, float] = {}
    round_seconds: List[Dict[str, float]] = []
    for name in spec.top_stage_names() + ["objective_build"]:
        node = place_node.children.get(name)
        if node is not None and node.calls:
            stage_seconds[name] = node.seconds
    rounds = sorted((c for c in place_node.children.values()
                     if c.name.startswith("round")),
                    key=lambda c: int(c.name[len("round"):]))
    round_stage_names = spec.round_stage_names()
    for rnd in rounds:
        per_round: Dict[str, float] = {}
        for stage in round_stage_names:
            node = rnd.children.get(stage)
            if node is not None and node.calls:
                per_round[stage] = node.seconds
                stage_seconds[stage] = stage_seconds.get(stage, 0.0) \
                    + node.seconds
        round_seconds.append(per_round)
    return stage_seconds, round_seconds


# ----------------------------------------------------------------------
class PlacementPipeline:
    """Executes a :class:`PipelineSpec` against a shared context.

    Args:
        spec: the run description.
        ctx: the shared placement state.
        checkpoint_dir: when given, the context is serialized after
            every completed unit, and :meth:`resume` can pick the run
            back up from the last boundary.
        halt_after: stop (raising :class:`PipelineHalted`) after the
            unit with this label — either the full ``idx:name`` form or
            the part after the entry index (``round1/end``).  Used by
            the CLI's ``--halt-after`` for controlled interruption in
            tests and operational drills.
        preempt: cooperative preemption hook, polled once per completed
            unit *after* its checkpoint is saved.  Returning ``True``
            stops the run with :class:`PipelinePreempted`; the job
            scheduler in :mod:`repro.service` uses this (backed by a
            cancel sentinel file) to park a running job at the nearest
            stage boundary, resumable bit-identically.
    """

    def __init__(self, spec: PipelineSpec, ctx: PlacementContext,
                 checkpoint_dir: Optional[Union[str, Path]] = None,
                 halt_after: Optional[str] = None,
                 preempt: Optional[Callable[[], bool]] = None) -> None:
        self.spec = spec
        self.ctx = ctx
        self.checkpoint_dir = (str(checkpoint_dir)
                               if checkpoint_dir is not None else None)
        self.halt_after = halt_after
        self.preempt = preempt
        self._spec_dict = spec.to_dict()
        self._completed: List[str] = []
        self._best: Optional[ckpt.BestState] = None

    # -- resume --------------------------------------------------------
    def resume(self) -> None:
        """Restore state from ``checkpoint_dir``'s last checkpoint.

        Raises:
            CheckpointError: no checkpoint, or one that does not match
                this run's config, spec or netlist.
        """
        if self.checkpoint_dir is None:
            raise ckpt.CheckpointError(
                "resume requested without a checkpoint directory")
        data = ckpt.load_checkpoint(self.checkpoint_dir)
        ckpt.verify_matches(data, self.ctx, self._spec_dict)
        placement = self.ctx.placement
        placement.x[:] = data.x
        placement.y[:] = data.y
        placement.z[:] = data.z
        if data.meta["objective_built"]:
            assert data.power is not None
            self.ctx.ensure_objective().restore_checkpoint(
                data.power, float(data.meta["objective_total"]))
        self._best = data.best
        self._completed = data.completed
        self.ctx.set_rng_state(dict(data.meta["rng_state"]))
        _log.info("resumed from %s: %d/%d units done",
                  self.checkpoint_dir, len(self._completed),
                  len(self.spec.units()))

    # -- execution -----------------------------------------------------
    def run(self) -> None:
        """Execute every not-yet-completed unit of the spec in order."""
        round_no = 0
        for idx, entry in enumerate(self.spec.entries):
            if entry.needs_objective:
                self.ctx.ensure_objective()
            if isinstance(entry, StageEntry):
                self._run_stage_unit(f"{idx}:{entry.stage}", entry)
                continue
            for _ in range(entry.rounds):
                round_no += 1
                self._run_round(idx, entry, round_no)
            self._finish_group(idx, entry)

    def _run_stage_unit(self, unit: str, entry: StageEntry) -> None:
        if unit in self._completed:
            return
        with self.ctx.recorder.span(entry.stage):
            create_stage(entry.stage, entry.options).run(self.ctx)
        self.ctx.recorder.sample_resources(entry.stage)
        self._complete(unit)

    def _run_round(self, idx: int, entry: RepeatEntry,
                   round_no: int) -> None:
        rec = self.ctx.recorder
        stage_units = [(f"{idx}:round{round_no}/{s.stage}", s)
                       for s in entry.stages]
        end_unit = f"{idx}:round{round_no}/end"
        pending = [pair for pair in stage_units
                   if pair[0] not in self._completed]
        if pending:
            with rec.span(f"round{round_no}"):
                for unit, stage_entry in pending:
                    with rec.span(stage_entry.stage):
                        create_stage(stage_entry.stage,
                                     stage_entry.options).run(self.ctx)
                    rec.sample_resources(
                        f"round{round_no}/{stage_entry.stage}")
                    # inner-loop field telemetry: surrogate-served
                    # under the adaptive/surrogate fidelity modes
                    self.ctx.record_thermal(boundary=False)
                    self._complete(unit)
        if end_unit in self._completed:
            return
        # round boundary: exact field + surrogate drift check
        self.ctx.record_thermal(boundary=True)
        objective = self.ctx.objective
        if entry.snapshot_best:
            if self._best is None or objective.total < self._best[0]:
                placement = self.ctx.placement
                self._best = (objective.total, placement.x.copy(),
                              placement.y.copy(), placement.z.copy())
        terms = objective.terms()
        best_objective = (self._best[0] if self._best is not None
                          else objective.total)
        rec.record("placer/round", round=float(round_no),
                   objective=objective.total,
                   best_objective=best_objective,
                   wl_term=terms.wl_term,
                   ilv_term=terms.ilv_term,
                   thermal_term=terms.thermal_term)
        _log.info(
            "round %d/%d: objective %.6e (best %.6e, wl %.4e, ilv %d)",
            round_no, self.spec.total_rounds, objective.total,
            best_objective, terms.wirelength, terms.ilv)
        self._complete(end_unit)

    def _finish_group(self, idx: int, entry: RepeatEntry) -> None:
        unit = f"{idx}:end"
        if unit in self._completed:
            return
        if entry.snapshot_best and self._best is not None:
            objective = self.ctx.objective
            if objective.total > self._best[0]:
                placement = self.ctx.placement
                placement.x[:] = self._best[1]
                placement.y[:] = self._best[2]
                placement.z[:] = self._best[3]
                objective.rebuild()
                _log.info("restored best round snapshot: %.6e",
                          objective.total)
        self._complete(unit)

    # -- bookkeeping ---------------------------------------------------
    def _complete(self, unit: str) -> None:
        self._completed.append(unit)
        if self.checkpoint_dir is not None:
            with self.ctx.recorder.span("checkpoint"):
                ckpt.save_checkpoint(self.checkpoint_dir, self.ctx,
                                     self._spec_dict, self._completed,
                                     best=self._best)
        if self.preempt is not None and self.preempt():
            _log.info("preempted after %s", unit)
            raise PipelinePreempted(unit, self.checkpoint_dir)
        if self.halt_after is not None and self._matches_halt(unit):
            raise PipelineHalted(unit, self.checkpoint_dir)

    def _matches_halt(self, unit: str) -> bool:
        if unit == self.halt_after:
            return True
        _, _, suffix = unit.partition(":")
        return suffix == self.halt_after


def iter_spec_stage_names(spec: PipelineSpec) -> Iterator[str]:
    """Every stage name the spec references, in order (with repeats
    listed once) — handy for validation and docs tooling."""
    for entry in spec.entries:
        if isinstance(entry, StageEntry):
            yield entry.stage
        else:
            for stage in entry.stages:
                yield stage.stage
