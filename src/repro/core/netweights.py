"""Thermal-aware net weighting (Section 3.1, Eqs. 6-8).

Rewriting the objective with the power model substituted in (Eq. 7)
yields per-net multipliers on the wirelength and via terms:

    nw_lateral_i  = 1 + a_TEMP * R_net_i * s_wl_i
    nw_vertical_i = 1 + a_TEMP * R_net_i * s_ilv_i / a_ILV

where ``R_net_i`` is the summed thermal resistance of the net's *driver*
cells at their current positions — nets driven from hot, hard-to-cool
spots get shortened preferentially, which reduces their capacitance and
hence the very power that heats those spots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import PlacementConfig
from repro.netlist.placement import Placement
from repro.thermal.power import PowerModel
from repro.thermal.resistance import ResistanceModel


@dataclass
class NetWeights:
    """Per-net partitioning weights, indexed by net id.

    Attributes:
        lateral: weights applied when a net is cut by an x or y cut.
        vertical: weights applied when a net is cut by a z (layer) cut.
    """

    lateral: np.ndarray
    vertical: np.ndarray


def compute_net_weights(placement: Placement, config: PlacementConfig,
                        power_model: PowerModel,
                        resistance_model: ResistanceModel = None
                        ) -> NetWeights:
    """Evaluate Eq. 8 at the placement's current positions.

    With thermal weighting disabled (``alpha_temp == 0`` or the ablation
    toggle off) every weight is 1 and partitioning reduces to plain
    min-cut.
    """
    netlist = placement.netlist
    m = netlist.num_nets
    if config.alpha_temp <= 0 or not config.use_thermal_net_weights:
        ones = np.ones(m)
        return NetWeights(lateral=ones, vertical=ones.copy())

    rm = resistance_model or ResistanceModel(placement.chip, config.tech)
    areas = np.maximum(netlist.areas, 1e-18)
    r_net = np.zeros(m)
    for net in netlist.nets:
        if net.is_trr:
            continue
        total = 0.0
        for d in net.driver_ids:
            total += rm.cell_resistance(
                float(placement.x[d]), float(placement.y[d]),
                int(placement.z[d]), float(areas[d]))
        r_net[net.id] = total
    lateral = 1.0 + config.alpha_temp * r_net * power_model.s_wl
    vertical = (1.0 + config.alpha_temp * r_net * power_model.s_ilv
                / config.alpha_ilv)
    return NetWeights(lateral=lateral, vertical=vertical)
