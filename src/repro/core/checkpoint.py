"""Checkpoint/resume: serialize a run at any stage boundary.

A checkpoint is a directory holding two files:

- ``checkpoint.json`` — metadata: the full config (plus its stable
  hash), the serialized pipeline spec (plus hash), a netlist signature,
  the ordered list of completed pipeline units, the context RNG state,
  and the objective accumulators' scalar half.  The document is pinned
  by ``checkpoint_schema.json`` and validated with the same
  dependency-free validator the run manifests use.
- ``state.npz`` — the placement coordinate arrays, the per-cell power
  accumulator of the incremental objective (bit-exact resume needs its
  *history-dependent* low bits, see
  :meth:`~repro.core.objective.ObjectiveState.checkpoint_state`), and
  the best-round snapshot arrays when one exists.

Resume validates the config hash, spec hash and netlist signature
before touching any state, so a checkpoint can never be silently
applied to a different circuit, different knobs or a different
pipeline.  With all three equal, a resumed run replays the remaining
units with the same per-stage seeded generators and the same
accumulator bits, reproducing the uninterrupted run's final placement
bit-identically.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.analysis import FloatArray, IntArray
from repro.core.context import PlacementContext
from repro.obs.clock import wall_time
from repro.obs.manifest import (CHECKPOINT_KIND, config_hash, content_hash,
                                validate_checkpoint_meta)

__all__ = ["CHECKPOINT_VERSION", "CheckpointData", "CheckpointError",
           "checkpoint_paths", "has_checkpoint", "load_checkpoint",
           "save_checkpoint", "verify_matches"]

CHECKPOINT_VERSION = 1

#: Best-round snapshot: (objective, x, y, z).
BestState = Tuple[float, FloatArray, FloatArray, IntArray]


class CheckpointError(RuntimeError):
    """A checkpoint is missing, corrupt, or does not match the run."""


@dataclass
class CheckpointData:
    """One loaded checkpoint: metadata plus the serialized arrays.

    Attributes:
        meta: the ``checkpoint.json`` document (schema-validated).
        x, y, z: placement coordinate arrays at the boundary.
        power: per-cell power accumulator of the objective, or ``None``
            when the objective had not been built yet.
        best: best-round snapshot ``(objective, x, y, z)``, if any.
    """

    meta: Dict[str, Any]
    x: FloatArray
    y: FloatArray
    z: IntArray
    power: Optional[FloatArray] = None
    best: Optional[BestState] = None

    @property
    def completed(self) -> List[str]:
        """Ordered unit labels already executed."""
        return [str(u) for u in self.meta["completed"]]


def checkpoint_paths(directory: Union[str, Path]) -> Tuple[Path, Path]:
    """The ``(checkpoint.json, state.npz)`` paths of a directory."""
    base = Path(directory)
    return base / "checkpoint.json", base / "state.npz"


def has_checkpoint(directory: Union[str, Path]) -> bool:
    """Whether a complete checkpoint exists in ``directory``."""
    meta_path, npz_path = checkpoint_paths(directory)
    return meta_path.is_file() and npz_path.is_file()


def _netlist_signature(ctx: PlacementContext) -> Dict[str, Any]:
    netlist = ctx.netlist
    return {
        "name": netlist.name,
        "num_cells": int(netlist.num_cells),
        "num_nets": int(netlist.num_nets),
        "num_movable": int(netlist.num_movable),
        "num_pins": int(netlist.num_pins()),
    }


def save_checkpoint(directory: Union[str, Path], ctx: PlacementContext,
                    spec_dict: Dict[str, Any], completed: List[str],
                    best: Optional[BestState] = None) -> str:
    """Serialize the run state after a completed stage boundary.

    The arrays file is written first and the metadata document last,
    so a metadata file whose arrays are missing (a torn write) is
    detected as an incomplete checkpoint rather than loaded.

    Args:
        directory: checkpoint directory (created if needed).
        ctx: the run's context (placement, objective, RNG stream).
        spec_dict: the serialized pipeline spec being executed.
        completed: ordered unit labels finished so far.
        best: the runner's best-round snapshot, if tracking one.

    Returns:
        The path of the written ``checkpoint.json``.
    """
    meta_path, npz_path = checkpoint_paths(directory)
    os.makedirs(str(Path(directory)), exist_ok=True)
    arrays: Dict[str, Any] = {
        "x": ctx.placement.x,
        "y": ctx.placement.y,
        "z": ctx.placement.z,
    }
    objective_total: Optional[float] = None
    if ctx.objective_built:
        power, objective_total = ctx.objective.checkpoint_state()
        arrays["power"] = power
    best_objective: Optional[float] = None
    if best is not None:
        best_objective = float(best[0])
        arrays["best_x"] = best[1]
        arrays["best_y"] = best[2]
        arrays["best_z"] = best[3]
    np.savez(str(npz_path), **arrays)
    meta: Dict[str, Any] = {
        "kind": CHECKPOINT_KIND,
        "schema_version": CHECKPOINT_VERSION,
        "created_unix": wall_time(),
        "seed": int(ctx.config.seed),
        "config": ctx.config.to_dict(),
        "config_hash": config_hash(ctx.config),
        "spec": spec_dict,
        "spec_hash": content_hash(spec_dict),
        "netlist": _netlist_signature(ctx),
        "completed": list(completed),
        "objective_built": ctx.objective_built,
        "objective_total": objective_total,
        "best_objective": best_objective,
        "rng_state": ctx.rng_state(),
        "arrays_file": npz_path.name,
    }
    errors = validate_checkpoint_meta(meta)
    if errors:
        raise CheckpointError(
            "refusing to write an invalid checkpoint: "
            + "; ".join(errors))
    with open(meta_path, "w", encoding="utf-8") as fh:
        json.dump(meta, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return str(meta_path)


def load_checkpoint(directory: Union[str, Path]) -> CheckpointData:
    """Load and schema-validate a checkpoint directory.

    Raises:
        CheckpointError: missing files, schema violations, or arrays
            inconsistent with the metadata.
    """
    meta_path, npz_path = checkpoint_paths(directory)
    if not meta_path.is_file():
        raise CheckpointError(f"no checkpoint at {meta_path}")
    if not npz_path.is_file():
        raise CheckpointError(
            f"checkpoint arrays missing: {npz_path} (torn write?)")
    with open(meta_path, "r", encoding="utf-8") as fh:
        meta = json.load(fh)
    if not isinstance(meta, dict):
        raise CheckpointError(f"{meta_path} is not a JSON object")
    errors = validate_checkpoint_meta(meta)
    if errors:
        raise CheckpointError(
            f"{meta_path} failed schema validation: " + "; ".join(errors))
    with np.load(str(npz_path)) as arrays:
        x = np.asarray(arrays["x"], dtype=np.float64)
        y = np.asarray(arrays["y"], dtype=np.float64)
        z = np.asarray(arrays["z"], dtype=np.int64)
        power: Optional[FloatArray] = None
        if meta["objective_built"]:
            if "power" not in arrays:
                raise CheckpointError(
                    "checkpoint claims a built objective but has no "
                    "power array")
            power = np.asarray(arrays["power"], dtype=np.float64)
        best: Optional[BestState] = None
        if meta["best_objective"] is not None:
            for key in ("best_x", "best_y", "best_z"):
                if key not in arrays:
                    raise CheckpointError(
                        f"checkpoint has best_objective but no {key}")
            best = (float(meta["best_objective"]),
                    np.asarray(arrays["best_x"], dtype=np.float64),
                    np.asarray(arrays["best_y"], dtype=np.float64),
                    np.asarray(arrays["best_z"], dtype=np.int64))
    return CheckpointData(meta=meta, x=x, y=y, z=z, power=power,
                          best=best)


def verify_matches(data: CheckpointData, ctx: PlacementContext,
                   spec_dict: Dict[str, Any]) -> None:
    """Refuse to resume against a different run.

    Raises:
        CheckpointError: when the config hash, spec hash or netlist
            signature of the checkpoint disagrees with the current run.
    """
    want_config = config_hash(ctx.config)
    got_config = data.meta["config_hash"]
    if got_config != want_config:
        raise CheckpointError(
            f"checkpoint config hash {got_config} != current "
            f"{want_config}; resume requires identical knobs")
    want_spec = content_hash(spec_dict)
    got_spec = data.meta["spec_hash"]
    if got_spec != want_spec:
        raise CheckpointError(
            f"checkpoint pipeline spec hash {got_spec} != current "
            f"{want_spec}; resume requires the identical spec")
    signature = _netlist_signature(ctx)
    stored = data.meta["netlist"]
    if stored != signature:
        raise CheckpointError(
            f"checkpoint netlist {stored} != current {signature}")
    n = ctx.netlist.num_cells
    for label, array in (("x", data.x), ("y", data.y), ("z", data.z)):
        if array.shape != (n,):
            raise CheckpointError(
                f"checkpoint {label} array has shape {array.shape}, "
                f"expected ({n},)")
