"""Detailed legalization (Section 5).

Places every cell into a legal, non-overlapping row slot while
minimizing objective degradation:

1. A fine density mesh (bins about one average cell) classifies bins
   into *exporters* (more cell width than capacity) and *acceptors*.
   Directed edges run from exporters to adjacent acceptors; since
   acceptors have no outgoing edges the graph is a DAG, and the derived
   processing order is "exporters first, most-overfull first" — cells
   that must move get first pick of the free space their neighbourhood
   will absorb.
2. Within a bin, cells are ordered by an objective-sensitivity estimate
   (connectivity times size): the cells whose displacement hurts most
   are placed closest to their current spots.
3. Each cell searches a target region of row segments around its
   position for the best available slot by objective delta, gradually
   expanding the region (and finally spilling to adjacent layers) until
   free space is found.

The result is a fully legal placement: every movable cell centred in a
row, inside the die, with no overlaps.
"""

from __future__ import annotations

import bisect as _bisect
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis import FloatArray
from repro.core.config import PlacementConfig
from repro.core.objective import ObjectiveState
from repro.geometry.density import DensityMesh
from repro.netlist.placement import Placement
from repro.obs import get_recorder

RowKey = Tuple[int, int]  # (layer, row index)


class RowSegments:
    """Occupied-interval bookkeeping for every row of every layer.

    Intervals are kept sorted by start coordinate; gaps are scanned
    around a desired position to find the nearest slot wide enough for
    a cell.
    """

    def __init__(self, placement: Placement) -> None:
        self.chip = placement.chip
        # per (layer, row): parallel sorted lists of starts and ends
        self._starts: Dict[RowKey, List[float]] = {}
        self._ends: Dict[RowKey, List[float]] = {}
        self._cids: Dict[RowKey, List[int]] = {}
        # per (layer, row): cached (gap_lo, gap_hi) lists; invalidated
        # on any mutation, rebuilt lazily by nearest_slot
        self._gap_cache: Dict[RowKey, Tuple[List[float], List[float]]] = {}

    def _lists(self, key: RowKey
               ) -> Tuple[List[float], List[float], List[int]]:
        return (self._starts.setdefault(key, []),
                self._ends.setdefault(key, []),
                self._cids.setdefault(key, []))

    def _gaps(self, key: RowKey) -> Tuple[List[float], List[float]]:
        """Free-gap boundary lists of a row, cached between mutations.

        Rows hold a few dozen intervals at most, so plain-list scans
        beat NumPy's per-call overhead here by a wide margin.
        """
        cached = self._gap_cache.get(key)
        if cached is None:
            starts, ends, _ = self._lists(key)
            lo = [0.0]
            run = 0.0
            for e in ends:
                if e > run:
                    run = e
                lo.append(run)
            hi = list(starts)
            hi.append(self.chip.width)
            cached = (lo, hi)
            self._gap_cache[key] = cached
        return cached

    def insert(self, layer: int, row: int, cid: int, x_center: float,
               width: float) -> None:
        """Occupy ``[x_center - w/2, x_center + w/2]`` in a row.

        Raises:
            ValueError: if the interval overlaps an existing one.
        """
        starts, ends, cids = self._lists((layer, row))
        lo = x_center - 0.5 * width
        hi = x_center + 0.5 * width
        i = _bisect.bisect_left(starts, lo)
        eps = 1e-12
        if i > 0 and ends[i - 1] > lo + eps:
            raise ValueError(f"overlap in layer {layer} row {row}")
        if i < len(starts) and starts[i] < hi - eps:
            raise ValueError(f"overlap in layer {layer} row {row}")
        starts.insert(i, lo)
        ends.insert(i, hi)
        cids.insert(i, cid)
        self._gap_cache.pop((layer, row), None)

    def remove(self, layer: int, row: int, cid: int) -> None:
        """Vacate a cell's interval in a row."""
        key = (layer, row)
        starts, ends, cids = self._lists(key)
        idx = cids.index(cid)
        del starts[idx], ends[idx], cids[idx]
        self._gap_cache.pop(key, None)

    def nearest_slot(self, layer: int, row: int, x_desired: float,
                     width: float) -> Optional[float]:
        """Centre x of the nearest free slot of ``width`` in a row.

        Returns None if the row has no gap wide enough.  The gap
        boundaries come from the row's cached arrays, so repeated
        queries between mutations cost a few array ops each.
        """
        if width > self.chip.width:
            return None
        gap_lo, gap_hi = self._gaps((layer, row))
        need = width - 1e-15
        half = 0.5 * width
        best = None
        best_d = float("inf")
        for lo, hi in zip(gap_lo, gap_hi):
            if hi - lo < need:
                continue
            c = x_desired
            if c < lo + half:
                c = lo + half
            elif c > hi - half:
                c = hi - half
            d = c - x_desired
            if d < 0.0:
                d = -d
            if d < best_d:
                best_d = d
                best = c
        return best

    def occupants(self, layer: int, row: int) -> List[int]:
        """Cell ids currently placed in a row, in x order."""
        return list(self._cids.get((layer, row), ()))

    def free_width(self, layer: int, row: int) -> float:
        """Total unoccupied width in a row."""
        starts, ends, _ = self._lists((layer, row))
        used = sum(e - s for s, e in zip(starts, ends))
        return self.chip.width - used

    def push_plan(self, layer: int, row: int, x_desired: float,
                  width: float
                  ) -> Optional[Tuple[float, List[Tuple[int, float]]]]:
        """Plan an insertion that shifts already-placed cells aside.

        Keeps the x-order of the row's occupants, inserts the new cell
        at the position nearest ``x_desired``, and resolves overlaps
        with a two-pass (left-to-right then right-to-left) repack.

        Returns:
            ``(new_center, [(cid, new_center), ...])`` for the displaced
            occupants, or None when the row cannot absorb the width.
        """
        starts, ends, cids = self._lists((layer, row))
        if self.free_width(layer, row) < width - 1e-15:
            return None
        lo = x_desired - 0.5 * width
        insert_at = _bisect.bisect_left(starts, lo)
        seq_w = ([ends[i] - starts[i] for i in range(insert_at)]
                 + [width]
                 + [ends[i] - starts[i] for i in range(insert_at,
                                                       len(starts))])
        seq_lo = (starts[:insert_at] + [lo] + starts[insert_at:])
        # left-to-right: push right to clear overlaps
        pos = list(seq_lo)
        prev_end = 0.0
        for i in range(len(pos)):
            pos[i] = max(pos[i], prev_end)
            prev_end = pos[i] + seq_w[i]
        # right-to-left: pull back anything shoved past the row end
        limit = self.chip.width
        for i in range(len(pos) - 1, -1, -1):
            pos[i] = min(pos[i], limit - seq_w[i])
            limit = pos[i]
        if pos and pos[0] < -1e-12:
            return None
        new_center = pos[insert_at] + 0.5 * width
        displaced: List[Tuple[int, float]] = []
        for i, p in enumerate(pos):
            if i == insert_at:
                continue
            j = i if i < insert_at else i - 1
            if abs(p - starts[j]) > 1e-15:
                displaced.append((cids[j], p + 0.5 * seq_w[i]))
        return new_center, displaced

    def apply_push(self, layer: int, row: int, cid: int,
                   new_center: float, width: float,
                   displaced: Sequence[Tuple[int, float]],
                   cell_widths: FloatArray) -> None:
        """Commit a :meth:`push_plan`: rewrite the row's intervals."""
        starts, ends, cids = self._lists((layer, row))
        moved = {c: x for c, x in displaced}
        entries: List[Tuple[float, float, int]] = []
        for s, e, c in zip(starts, ends, cids):
            w = e - s
            center = moved.get(c, s + 0.5 * w)
            entries.append((center - 0.5 * w, center + 0.5 * w, c))
        entries.append((new_center - 0.5 * width,
                        new_center + 0.5 * width, cid))
        entries.sort()
        self._starts[(layer, row)] = [e[0] for e in entries]
        self._ends[(layer, row)] = [e[1] for e in entries]
        self._cids[(layer, row)] = [e[2] for e in entries]
        self._gap_cache.pop((layer, row), None)


class DetailedLegalizer:
    """Runs detailed legalization on a placement.

    Args:
        objective: shared incremental objective (moves flow through it).
        config: placement configuration.
    """

    def __init__(self, objective: ObjectiveState,
                 config: PlacementConfig) -> None:
        self.objective = objective
        self.config = config
        self.placement = objective.placement
        self.netlist = self.placement.netlist
        self.chip = self.placement.chip

    # ------------------------------------------------------------------
    def run(self) -> None:
        """Legalize every movable cell."""
        rec = get_recorder()
        order = self._processing_order()
        segments = RowSegments(self.placement)
        widths = self.netlist.widths
        pushes = 0
        for cid in order:
            pushes += self._place_cell(cid, float(widths[cid]),
                                       segments)
        if rec.enabled:
            rec.count("detailed/cells_placed", float(len(order)))
            rec.count("detailed/push_inserts", float(pushes))
            rec.count("detailed/gap_inserts",
                      float(len(order) - pushes))

    # ------------------------------------------------------------------
    def _processing_order(self) -> List[int]:
        """DAG-derived bin order, refined by per-cell sensitivity."""
        placement = self.placement
        netlist = self.netlist
        mesh = DensityMesh.fine_for(self.chip,
                                    netlist.average_cell_width,
                                    netlist.average_cell_height)
        areas = netlist.areas
        mesh.build_from_placement(placement, areas)
        # exporters (overfull) first, most overfull first; acceptors after
        bin_rank: Dict[Tuple[int, int, int], float] = {}
        capacity = mesh.bin_capacity
        overfull: List[Tuple[float, Tuple[int, int, int]]] = []
        underfull: List[Tuple[float, Tuple[int, int, int]]] = []
        for index, members in mesh.iter_members():
            if not members:
                continue
            excess = mesh.area_in(index) - capacity
            if excess > 0:
                overfull.append((-excess, index))
            else:
                underfull.append((excess, index))
        overfull.sort()
        underfull.sort()
        for rank, (_, index) in enumerate(overfull + underfull):
            bin_rank[index] = rank

        sensitivity = self._sensitivities()
        cells = [c.id for c in netlist.cells if c.movable]

        # Wide cells go first regardless of bin rank: at ~95% row
        # utilization only early rows have contiguous gaps their size,
        # so deferring them can make legalization infeasible (the same
        # reason real flows legalize macros before standard cells).
        widths = netlist.widths
        wide_cutoff = 3.0 * netlist.average_cell_width
        wide = sorted((c for c in cells if widths[c] > wide_cutoff),
                      key=lambda c: -float(widths[c]))
        rest = [c for c in cells if widths[c] <= wide_cutoff]

        def key(cid: int) -> Tuple[int, float]:
            index = mesh.bin_of(float(placement.x[cid]),
                                float(placement.y[cid]),
                                int(placement.z[cid]))
            return (bin_rank.get(index, len(bin_rank)),
                    -sensitivity[cid])

        return wide + sorted(rest, key=key)

    def _sensitivities(self) -> FloatArray:
        """Estimated objective sensitivity to moving each cell.

        Connectivity (incident signal-net count) scaled by footprint:
        big, well-connected cells hurt most when displaced, so they are
        placed while the free space near their positions is still
        intact.
        """
        netlist = self.netlist
        n = netlist.num_cells
        degree = np.zeros(n, dtype=np.float64)
        for net in netlist.nets:
            if net.is_trr:
                continue
            for cid in net.unique_cell_ids:
                degree[cid] += 1
        areas = netlist.areas
        mean_area = max(float(areas.mean()), 1e-30)
        return degree + areas / mean_area

    # ------------------------------------------------------------------
    def _place_cell(self, cid: int, width: float,
                    segments: RowSegments) -> int:
        """Place one cell; returns 1 if a push plan was needed, 0 if
        the cell landed in a free gap."""
        placement = self.placement
        chip = self.chip
        x0 = float(placement.x[cid])
        y0 = float(placement.y[cid])
        z0 = int(placement.z[cid])
        row0 = int(round((y0 - 0.5 * chip.row_height) / chip.row_pitch))
        row0 = min(max(row0, 0), chip.rows_per_layer - 1)

        best = self._search(cid, width, x0, z0, row0, segments)
        if best is None:
            raise RuntimeError(
                f"no legal slot for cell {self.netlist.cells[cid].name!r};"
                " the design does not fit the chip")
        _, x, y, z, row, plan = best
        if plan is None:
            self.objective.apply_moves([(cid, x, y, int(z))])
            segments.insert(int(z), row, cid, x, width)
            return 0
        displaced = plan
        moves = [(cid, x, y, int(z))]
        moves.extend(
            (dcid, dx, float(self.placement.y[dcid]),
             int(self.placement.z[dcid]))
            for dcid, dx in displaced)
        self.objective.apply_moves(moves)
        segments.apply_push(int(z), row, cid, x, width, displaced,
                            self.netlist.widths)
        return 1

    def _search(self, cid: int, width: float, x0: float,
                z0: int, row0: int, segments: RowSegments
                ) -> Optional[Tuple[Any, ...]]:
        """Best slot near the cell, expanding the search shell until
        one is found.

        Every shell covers *all layers* at the current row radius: the
        objective (which prices vias at alpha_ilv and knows the thermal
        term) decides whether a cell in a crowded neighbourhood hops a
        layer or shifts laterally — searching the whole home layer first
        would trade a one-via hop for die-crossing lateral displacement.
        Keeps expanding one extra radius after the first hit so a
        slightly farther row with a much better objective can win.
        """
        chip = self.chip
        n_rows = chip.rows_per_layer
        layers = sorted(range(chip.num_layers), key=lambda z: abs(z - z0))
        best: Optional[Tuple[Any, ...]] = None
        found_radius: Optional[int] = None
        radius = 0
        while radius < n_rows:
            rows: List[int] = []
            for r in (row0 - radius, row0 + radius):
                if 0 <= r < n_rows:
                    rows.append(r)
            if radius == 0:
                rows = rows[:1]
            # Free-gap candidates across the whole shell are scored in
            # one batched objective call; rows with no gap fall back to
            # the scalar push-plan evaluation.  Candidates keep their
            # (layer, row) scan order so ties resolve as the sequential
            # version did.
            shell: List[List[Any]] = []
            gap_idx: List[int] = []
            for layer in layers:
                for row in rows:
                    slot = segments.nearest_slot(layer, row, x0, width)
                    if slot is not None:
                        y = row * chip.row_pitch + 0.5 * chip.row_height
                        gap_idx.append(len(shell))
                        shell.append([None, slot, y, layer, row, None])
                    else:
                        cand = self._evaluate_push(cid, width, x0,
                                                   layer, row, segments)
                        if cand is not None:
                            shell.append(list(cand))
            if gap_idx:
                deltas = self.objective.eval_moves_batch(
                    [cid] * len(gap_idx),
                    [shell[k][1] for k in gap_idx],
                    [shell[k][2] for k in gap_idx],
                    [shell[k][3] for k in gap_idx])
                for k, delta in zip(gap_idx, deltas):
                    shell[k][0] = float(delta)
            for cand in shell:
                if best is None or cand[0] < best[0]:
                    best = tuple(cand)
            if best is not None and found_radius is None:
                found_radius = radius
            if found_radius is not None and radius >= found_radius + 1:
                break
            radius += 1
        return best

    def _evaluate_push(self, cid: int, width: float, x0: float,
                       layer: int, row: int, segments: RowSegments
                       ) -> Optional[Tuple[float, float, float, int, int,
                                           List[Tuple[int, float]]]]:
        """Cost an insertion that shifts a full row's cells aside.

        Only called when the row has no free gap.  The joint move (cell
        plus displaced occupants) stays on the scalar objective path;
        single-cell gap candidates are batched by :meth:`_search`.
        """
        chip = self.chip
        y = row * chip.row_pitch + 0.5 * chip.row_height
        plan = segments.push_plan(layer, row, x0, width)
        if plan is None:
            return None
        center, displaced = plan
        moves = [(cid, center, y, layer)]
        moves.extend(
            (dcid, dx, float(self.placement.y[dcid]),
             int(self.placement.z[dcid]))
            for dcid, dx in displaced)
        delta = self.objective.eval_moves(moves)
        return (delta, center, y, layer, row, displaced)


# ----------------------------------------------------------------------
def check_legal(placement: Placement, tolerance: float = 1e-9) -> None:
    """Assert a placement is legal; raises ``AssertionError`` otherwise.

    Legality: every movable cell inside the die, centred on a row of its
    layer, and no two cells on the same row overlapping.
    """
    chip = placement.chip
    netlist = placement.netlist
    widths = netlist.widths
    rows: Dict[RowKey, List[Tuple[float, float, str]]] = {}
    for cell in netlist.cells:
        if not cell.movable:
            continue
        cid = cell.id
        x = float(placement.x[cid])
        y = float(placement.y[cid])
        z = int(placement.z[cid])
        w = float(widths[cid])
        if not (0 <= z < chip.num_layers):
            raise AssertionError(f"{cell.name}: layer {z} out of range")
        if x - 0.5 * w < -tolerance or x + 0.5 * w > chip.width + tolerance:
            raise AssertionError(f"{cell.name}: outside die in x")
        row_f = (y - 0.5 * chip.row_height) / chip.row_pitch
        row = int(round(row_f))
        if abs(row_f - row) > 1e-6 or not 0 <= row < chip.rows_per_layer:
            raise AssertionError(f"{cell.name}: not centred on a row "
                                 f"(y={y}, row_f={row_f})")
        rows.setdefault((z, row), []).append(
            (x - 0.5 * w, x + 0.5 * w, cell.name))
    for (z, row), intervals in rows.items():
        intervals.sort()
        for (lo1, hi1, n1), (lo2, hi2, n2) in zip(intervals,
                                                  intervals[1:]):
            if hi1 > lo2 + tolerance:
                raise AssertionError(
                    f"overlap between {n1} and {n2} on layer {z} "
                    f"row {row}")
