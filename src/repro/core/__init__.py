"""The placement engine: the paper's primary contribution.

Pipeline (Section 6 of the paper):

1. TRR nets are added and all cells start at the chip centre.
2. :mod:`~repro.core.globalplace` — recursive bisection with
   direction-aware cuts, terminal propagation, thermal net weights
   (Eq. 8) and TRR net weights (Eq. 12).
3. :mod:`~repro.core.moves` — global then local move/swap passes.
4. :mod:`~repro.core.cellshift` — iterative row-aware cell shifting
   until the maximum bin density approaches one.
5. :mod:`~repro.core.detailed` — detailed legalization into rows.

Everything optimizes the single objective of Eq. 3, implemented
incrementally in :mod:`~repro.core.objective`.

The one-call entry point is :class:`~repro.core.placer.Placer3D`.
"""

from repro.core.baseline import AnnealingPlacer, random_baseline
from repro.core.checkpoint import (CheckpointError, has_checkpoint,
                                   load_checkpoint, save_checkpoint)
from repro.core.config import PlacementConfig
from repro.core.context import PlacementContext
from repro.core.objective import ObjectiveState
from repro.core.pipeline import (PipelineHalted, PipelineSpec,
                                 PlacementPipeline, RepeatEntry,
                                 StageEntry, default_pipeline_spec)
from repro.core.placer import Placer3D, PlacementResult
from repro.core.quadratic import QuadraticPlacer
from repro.core.refine import LegalRefiner
from repro.core.stages import (Stage, available_stages, create_stage,
                               get_stage, register_stage)

__all__ = ["PlacementConfig", "ObjectiveState", "Placer3D",
           "PlacementResult", "AnnealingPlacer", "QuadraticPlacer",
           "random_baseline", "LegalRefiner",
           "PlacementContext", "PipelineSpec", "StageEntry",
           "RepeatEntry", "PlacementPipeline", "PipelineHalted",
           "default_pipeline_spec",
           "Stage", "available_stages", "create_stage", "get_stage",
           "register_stage",
           "CheckpointError", "has_checkpoint", "load_checkpoint",
           "save_checkpoint"]
