"""Baseline placers for comparison experiments.

The paper's contribution is a *partitioning-based* 3D placer; its
introduction surveys nonlinear, quadratic/force-directed and simulated-
annealing alternatives [1-6].  To let the benchmark harness demonstrate
where recursive bisection stands, this module provides two reference
points built on the same objective, legalizer and metrics:

- :func:`random_baseline` — uniform random positions, then detailed
  legalization.  The floor any real placer must clear.
- :class:`AnnealingPlacer` — a classic low-temperature-window simulated
  annealer over cell positions (range-limited displacements and cell
  swaps under the Metropolis rule), then detailed legalization.  With a
  modest move budget it is the "straightforward alternative" a
  practitioner would try first; the recursive-bisection placer should
  beat it at equal-ish runtime on anything non-trivial.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.config import PlacementConfig
from repro.core.context import auto_chip
from repro.core.detailed import DetailedLegalizer
from repro.core.objective import ObjectiveState
from repro.core.result import PlacementResult
from repro.geometry.chip import ChipGeometry
from repro.netlist.netlist import Netlist
from repro.netlist.placement import Placement
from repro.obs import Stopwatch


def _auto_chip(netlist: Netlist, config: PlacementConfig) -> ChipGeometry:
    return auto_chip(netlist, config)


def random_baseline(netlist: Netlist, config: PlacementConfig,
                    chip: Optional[ChipGeometry] = None
                    ) -> PlacementResult:
    """Uniform random placement followed by detailed legalization."""
    watch = Stopwatch()
    chip = chip or _auto_chip(netlist, config)
    placement = Placement.random(netlist, chip, seed=config.seed)
    objective = ObjectiveState(placement, config)
    DetailedLegalizer(objective, config).run()
    runtime = watch.elapsed()
    return PlacementResult(
        placement=placement,
        objective=objective.total,
        wirelength=objective.wirelength(),
        ilv=objective.total_ilv(),
        runtime_seconds=runtime,
        stage_seconds={"legalize": runtime})


@dataclass
class AnnealingSchedule:
    """Cooling schedule of the annealing baseline.

    Attributes:
        moves_per_cell: attempted moves per cell over the whole run.
        initial_acceptance: target fraction of uphill moves accepted at
            the starting temperature (calibrated from sampled deltas).
        cooling: geometric temperature decay per stage.
        stages: number of temperature stages.
        swap_fraction: fraction of attempts that are two-cell swaps
            rather than single-cell displacements.
    """

    moves_per_cell: int = 60
    initial_acceptance: float = 0.5
    cooling: float = 0.85
    stages: int = 24
    swap_fraction: float = 0.3


class AnnealingPlacer:
    """Simulated-annealing baseline over the same objective (Eq. 3).

    Args:
        netlist: circuit to place.
        config: objective coefficients (shared with the main placer).
        schedule: cooling schedule; the default lands in the same
            runtime ballpark as the recursive-bisection flow on small
            instances.
    """

    def __init__(self, netlist: Netlist, config: PlacementConfig,
                 chip: Optional[ChipGeometry] = None,
                 schedule: Optional[AnnealingSchedule] = None) -> None:
        self.netlist = netlist
        self.config = config
        self.chip = chip or _auto_chip(netlist, config)
        self.schedule = schedule or AnnealingSchedule()

    # ------------------------------------------------------------------
    def run(self) -> PlacementResult:
        """Anneal from a random start, then legalize."""
        watch = Stopwatch()
        config = self.config
        rng = np.random.default_rng(config.seed + 40_487)
        placement = Placement.random(self.netlist, self.chip,
                                     seed=config.seed)
        objective = ObjectiveState(placement, config)
        movable = [c.id for c in self.netlist.cells if c.movable]
        if movable:
            self._anneal(objective, movable, rng)
        DetailedLegalizer(objective, config).run()
        runtime = watch.elapsed()
        return PlacementResult(
            placement=placement,
            objective=objective.total,
            wirelength=objective.wirelength(),
            ilv=objective.total_ilv(),
            runtime_seconds=runtime,
            stage_seconds={"anneal+legalize": runtime})

    # ------------------------------------------------------------------
    def _calibrate_temperature(self, objective: ObjectiveState,
                               movable, rng) -> float:
        """Starting temperature from the uphill-delta distribution."""
        chip = self.chip
        placement = objective.placement
        uphill = []
        for _ in range(64):
            cid = int(rng.choice(movable))
            move = (cid, float(rng.uniform(0, chip.width)),
                    float(rng.uniform(0, chip.height)),
                    int(rng.integers(0, chip.num_layers)))
            delta = objective.eval_moves([move])
            if delta > 0:
                uphill.append(delta)
        if not uphill:
            return 1e-30
        mean_up = float(np.mean(uphill))
        p = min(max(self.schedule.initial_acceptance, 1e-3), 0.999)
        return -mean_up / math.log(p)

    def _anneal(self, objective: ObjectiveState, movable, rng) -> None:
        schedule = self.schedule
        chip = self.chip
        placement = objective.placement
        temperature = self._calibrate_temperature(objective, movable, rng)
        total_moves = schedule.moves_per_cell * len(movable)
        per_stage = max(1, total_moves // schedule.stages)
        window_x = chip.width
        window_y = chip.height
        for stage in range(schedule.stages):
            accepted = 0
            for _ in range(per_stage):
                if rng.random() < schedule.swap_fraction:
                    a, b = rng.choice(len(movable), size=2, replace=False)
                    a = movable[int(a)]
                    b = movable[int(b)]
                    moves = [
                        (a, float(placement.x[b]), float(placement.y[b]),
                         int(placement.z[b])),
                        (b, float(placement.x[a]), float(placement.y[a]),
                         int(placement.z[a])),
                    ]
                else:
                    cid = movable[int(rng.integers(0, len(movable)))]
                    nx = float(np.clip(
                        placement.x[cid]
                        + rng.uniform(-window_x, window_x),
                        0.0, chip.width))
                    ny = float(np.clip(
                        placement.y[cid]
                        + rng.uniform(-window_y, window_y),
                        0.0, chip.height))
                    nz = int(rng.integers(0, chip.num_layers))
                    moves = [(cid, nx, ny, nz)]
                delta = objective.eval_moves(moves)
                if delta <= 0 or (temperature > 0 and
                                  rng.random() < math.exp(
                                      -delta / temperature)):
                    objective.apply_moves(moves)
                    accepted += 1
            temperature *= schedule.cooling
            # shrink the displacement window with the acceptance rate,
            # the classic range-limiting rule
            rate = accepted / per_stage
            shrink = 0.5 + 0.5 * rate
            window_x = max(window_x * shrink, 2 * chip.width
                           / max(chip.rows_per_layer, 4))
            window_y = max(window_y * shrink, 2 * chip.row_pitch)
