"""The result type every placer entry point returns.

``PlacementResult`` lives in its own leaf module so that the stage
registry can offer the baseline and quadratic placers as drop-in
``global``-stage alternatives without an import cycle: those modules
need the result type, while the pipeline machinery needs those modules.
:mod:`repro.core.placer` re-exports it, so existing imports keep
working.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.netlist.placement import Placement
from repro.obs import Telemetry

__all__ = ["PlacementResult"]


@dataclass
class PlacementResult:
    """Outcome of a full placement run.

    Attributes:
        placement: the final (legal) placement.
        objective: final objective value (Eq. 3).
        wirelength: final total lateral HPWL, metres.
        ilv: final interlayer-via count.
        runtime_seconds: wall-clock runtime of :meth:`Placer3D.run`.
        stage_seconds: wall-clock per pipeline stage, summed across
            coarse+detailed rounds (back-compat flat view).
        round_seconds: one ``{stage: seconds}`` dict per
            coarse+detailed round, in round order.
        telemetry: full recorder snapshot (span tree, counters,
            series) for the run.
        thermal: the thermal fidelity policy's metadata document
            (mode, calibration coefficients, drift events, call
            counts); ``None`` for non-thermal runs.
    """

    placement: Placement
    objective: float
    wirelength: float
    ilv: int
    runtime_seconds: float
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    round_seconds: List[Dict[str, float]] = field(default_factory=list)
    telemetry: Optional[Telemetry] = None
    thermal: Optional[Dict[str, Any]] = None
