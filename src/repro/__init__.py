"""repro — thermal- and interlayer-via-aware placement for 3D ICs.

A from-scratch reproduction of Goplen & Sapatnekar, "Placement of 3D ICs
with Thermal and Interlayer Via Considerations" (DAC 2007): a
partitioning-based 3D placer exploring the tradeoff between wirelength,
interlayer-via count and temperature, together with every substrate it
needs (multilevel hypergraph partitioning, a dynamic power model, simple
and full-chip thermal analysis, Bookshelf IO and a synthetic IBM-PLACE
benchmark suite).

Quickstart::

    from repro import Placer3D, PlacementConfig, load_benchmark
    from repro.metrics import evaluate_placement

    netlist = load_benchmark("ibm01", scale=0.05)
    config = PlacementConfig(alpha_ilv=1e-5, alpha_temp=1e-5,
                             num_layers=4)
    result = Placer3D(netlist, config).run()
    print(evaluate_placement(result.placement, config.tech).row())
"""

from repro.core.config import PlacementConfig
from repro.core.placer import Placer3D, PlacementResult
from repro.geometry.chip import ChipGeometry
from repro.metrics.report import PlacementReport, evaluate_placement
from repro.netlist.netlist import Netlist
from repro.netlist.placement import Placement
from repro.netlist.suite import benchmark_names, load_benchmark
from repro.technology import TechnologyConfig

__version__ = "1.0.0"

__all__ = [
    "PlacementConfig",
    "Placer3D",
    "PlacementResult",
    "ChipGeometry",
    "PlacementReport",
    "evaluate_placement",
    "Netlist",
    "Placement",
    "benchmark_names",
    "load_benchmark",
    "TechnologyConfig",
    "__version__",
]
