"""IO pad generation.

The paper notes (Section 1) that partitioning placement "can obtain
good placement results even when IO pad connectivity information is
missing", unlike force-directed methods that need an encompassing pad
ring.  The suite circuits are therefore generated padless by default;
this module adds a peripheral pad ring to any netlist when experiments
want pad connectivity — pads are fixed terminal cells on the die
boundary of a given chip, each wired to a sample of internal cells.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.geometry.chip import ChipGeometry
from repro.netlist.net import PinRole
from repro.netlist.netlist import Netlist


def add_peripheral_pads(netlist: Netlist, chip: ChipGeometry,
                        count: int, layer: int = 0,
                        fanout: int = 3, pad_size: float = 1e-6,
                        input_fraction: float = 0.5,
                        seed: int = 0) -> List[int]:
    """Add a ring of fixed IO pads around the die and wire them in.

    Args:
        netlist: circuit to extend (movable cells must already exist).
        chip: provides the die outline the pads sit on.
        count: number of pads, distributed evenly around the perimeter.
        layer: layer index the pads live on (3D stacks usually bond out
            the bottom layer).
        fanout: internal cells connected to each pad net.
        pad_size: square pad edge length, metres.
        input_fraction: fraction of pads that *drive* (input pads); the
            rest are outputs driven by an internal cell.
        seed: RNG seed for the connectivity.

    Returns:
        List of the new pad cell ids.

    Raises:
        ValueError: if the netlist has no movable cells to connect to.
    """
    movable = [c.id for c in netlist.cells if c.movable]
    if not movable:
        raise ValueError("cannot add pads to a netlist with no cells")
    if count < 1:
        return []
    rng = np.random.default_rng(seed)
    perimeter = 2.0 * (chip.width + chip.height)
    pad_ids: List[int] = []
    for i in range(count):
        distance = (i + 0.5) / count * perimeter
        x, y = _point_on_perimeter(chip, distance)
        pad = netlist.add_cell(f"__pad__{i}", pad_size, pad_size,
                               fixed=True, fixed_position=(x, y, layer))
        pad_ids.append(pad.id)
        sinks = rng.choice(movable, size=min(fanout, len(movable)),
                           replace=False)
        if rng.random() < input_fraction:
            pins = [(pad.id, PinRole.DRIVER)]
            pins.extend((int(s), PinRole.SINK) for s in sinks)
        else:
            driver = int(sinks[0])
            pins = [(driver, PinRole.DRIVER), (pad.id, PinRole.SINK)]
            pins.extend((int(s), PinRole.SINK) for s in sinks[1:])
        netlist.add_net(f"__padnet__{i}", pins,
                        activity=float(rng.uniform(0.05, 0.45)))
    netlist.validate()
    return pad_ids


def _point_on_perimeter(chip: ChipGeometry, distance: float
                        ) -> Tuple[float, float]:
    """Point at a clockwise perimeter distance from the origin corner."""
    w, h = chip.width, chip.height
    d = distance % (2 * (w + h))
    if d < w:
        return d, 0.0
    d -= w
    if d < h:
        return w, d
    d -= h
    if d < w:
        return w - d, h
    d -= w
    return 0.0, h - d
