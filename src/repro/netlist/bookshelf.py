"""Reader/writer for the UCLA Bookshelf placement format.

The IBM-PLACE benchmark suite the paper evaluates on is distributed in
this format.  We support the three files placement needs:

- ``.nodes`` — cell names and dimensions, ``terminal`` keyword for pads;
- ``.nets``  — hypergraph nets with per-pin direction (``O`` = output /
  driver, ``I`` = input / sink, ``B`` = bidirectional, treated as sink);
- ``.pl``    — cell positions (used for fixed terminals and for dumping
  results).

Dimensions in Bookshelf files are in abstract "units"; a ``unit`` scale
factor converts them to metres on read (IBM-PLACE units are on a ~1 µm
grid, so the default scale is 1e-6).

The writer emits files the reader round-trips exactly, so placements can
be checkpointed to disk and reloaded.
"""

from __future__ import annotations

import os
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.netlist.csr import index_dtype
from repro.netlist.net import PinRole
from repro.netlist.netlist import Netlist

_ROLE_OF_DIRECTION = {"O": PinRole.DRIVER, "I": PinRole.SINK,
                      "B": PinRole.SINK}
_DIRECTION_OF_ROLE = {PinRole.DRIVER: "O", PinRole.SINK: "I"}

#: Pin-role codes in the streaming reader's preallocated role array.
_ROLE_SINK = 0
_ROLE_DRIVER = 1
_ROLE_CODE = {PinRole.SINK: _ROLE_SINK, PinRole.DRIVER: _ROLE_DRIVER}


def _iter_content_lines(path: str) -> Iterator[str]:
    """Stream the non-empty, non-comment lines of a Bookshelf file.

    The first line of every Bookshelf file is a format banner (``UCLA
    nodes 1.0`` etc.) which is skipped along with ``#`` comments.
    Iterating the open file reads in buffered chunks — the whole file
    is never resident, which is what keeps the streaming reader's peak
    memory at the size of its preallocated arrays.
    """
    with open(path) as f:
        for i, line in enumerate(f):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            if i == 0 and stripped.upper().startswith("UCLA"):
                continue
            yield stripped


def _content_lines(path: str) -> List[str]:
    """Non-empty, non-comment lines of a Bookshelf file, as a list."""
    return list(_iter_content_lines(path))


def read_nodes(path: str, netlist: Netlist, unit: float = 1e-6,
               default_height: Optional[float] = None) -> None:
    """Parse a ``.nodes`` file into an existing (usually empty) netlist.

    Terminals are added as fixed cells at the origin; their true
    positions come later from :func:`read_pl`.

    Args:
        path: the ``.nodes`` file.
        netlist: destination netlist; cells are appended.
        unit: metres per Bookshelf unit.
        default_height: height for nodes listed without one, metres.
    """
    for line in _content_lines(path):
        fields = line.split()
        key = fields[0]
        if key in ("NumNodes", "NumTerminals"):
            continue
        name = fields[0]
        rest = [f for f in fields[1:]]
        terminal = "terminal" in rest
        dims = [f for f in rest if f != "terminal"]
        if len(dims) >= 2:
            width = float(dims[0]) * unit
            height = float(dims[1]) * unit
        elif len(dims) == 1:
            width = float(dims[0]) * unit
            if default_height is None:
                raise ValueError(
                    f"{path}: node {name} has no height and no default")
            height = default_height
        else:
            raise ValueError(f"{path}: node {name} has no dimensions")
        if terminal:
            netlist.add_cell(name, width, height, fixed=True,
                             fixed_position=(0.0, 0.0, 0))
        else:
            netlist.add_cell(name, width, height)


def read_nets(path: str, netlist: Netlist,
              default_activity: float = 0.2) -> None:
    """Parse a ``.nets`` file into a netlist whose cells already exist.

    Nets whose first listed pin has no explicit direction get the first
    pin as driver — the convention the IBM-PLACE conversion scripts used.
    """
    lines = _content_lines(path)
    i = 0
    net_count = 0
    while i < len(lines):
        fields = lines[i].split()
        if fields[0] in ("NumNets", "NumPins"):
            i += 1
            continue
        if fields[0] != "NetDegree":
            raise ValueError(f"{path}: expected NetDegree, got {lines[i]!r}")
        # "NetDegree : <k> [name]"
        parts = lines[i].replace(":", " ").split()
        degree = int(parts[1])
        name = parts[2] if len(parts) > 2 else f"net{net_count}"
        i += 1
        pins: List[Tuple[int, PinRole]] = []
        saw_direction = False
        for _ in range(degree):
            pf = lines[i].split()
            cell_name = pf[0]
            role = PinRole.SINK
            if len(pf) > 1 and pf[1] in _ROLE_OF_DIRECTION:
                role = _ROLE_OF_DIRECTION[pf[1]]
                saw_direction = True
            pins.append((netlist.cell(cell_name).id, role))
            i += 1
        if not saw_direction and pins:
            pins[0] = (pins[0][0], PinRole.DRIVER)
        elif pins and not any(r is PinRole.DRIVER for _, r in pins):
            pins[0] = (pins[0][0], PinRole.DRIVER)
        netlist.add_net(name, pins, activity=default_activity)
        net_count += 1


def read_pl(path: str, netlist: Netlist, unit: float = 1e-6
            ) -> Dict[str, Tuple[float, float, int]]:
    """Parse a ``.pl`` file; returns ``{cell name: (x, y, layer)}``.

    Fixed cells in the netlist get their ``fixed_position`` updated in
    place.  Positions in ``.pl`` files are lower-left corners; they are
    converted to cell centres.  An optional fourth numeric column is read
    as the layer index (our 3D extension); 2D files default to layer 0.
    """
    positions: Dict[str, Tuple[float, float, int]] = {}
    for line in _content_lines(path):
        fields = line.split()
        name = fields[0]
        if name not in netlist._cell_by_name:
            raise ValueError(f"{path}: unknown cell {name!r}")
        x = float(fields[1]) * unit
        y = float(fields[2]) * unit
        layer = 0
        if len(fields) > 3:
            try:
                layer = int(fields[3])
            except ValueError:
                layer = 0  # orientation token such as ": N"
        cell = netlist.cell(name)
        cx = x + 0.5 * cell.width
        cy = y + 0.5 * cell.height
        positions[name] = (cx, cy, layer)
        if cell.fixed:
            cell.fixed_position = (cx, cy, layer)
    return positions


def read_bookshelf(prefix: str, unit: float = 1e-6,
                   default_activity: float = 0.2) -> Netlist:
    """Read ``<prefix>.nodes`` and ``<prefix>.nets`` (plus ``.pl`` if
    present) into a fresh netlist."""
    netlist = Netlist(name=os.path.basename(prefix))
    read_nodes(prefix + ".nodes", netlist, unit=unit)
    read_nets(prefix + ".nets", netlist, default_activity=default_activity)
    if os.path.exists(prefix + ".pl"):
        read_pl(prefix + ".pl", netlist, unit=unit)
    netlist.validate()
    return netlist


# ---------------------------------------------------------------------
# Streaming reader (full-size instances)
# ---------------------------------------------------------------------

def _header_count(path: str, line: str, key: str) -> int:
    """Parse a ``<key> : <count>`` header line's count."""
    fields = line.replace(":", " ").split()
    if len(fields) < 2:
        raise ValueError(f"{path}: malformed {key} header: {line!r}")
    try:
        count = int(fields[1])
    except ValueError:
        raise ValueError(
            f"{path}: malformed {key} header: {line!r}") from None
    if count < 0:
        raise ValueError(f"{path}: negative {key}: {count}")
    return count


def read_nodes_streaming(path: str, netlist: Netlist,
                         unit: float = 1e-6,
                         default_height: Optional[float] = None) -> None:
    """Streaming ``.nodes`` parser with preallocated attribute arrays.

    Parses node records into width/height/terminal arrays sized from
    the ``NumNodes`` header — no per-line Python list accumulation —
    then materializes the cells.  Produces a netlist identical to
    :func:`read_nodes` on well-formed input.

    Raises:
        ValueError: missing/malformed ``NumNodes`` header, a node line
            without dimensions, more nodes than declared, or a
            truncated file (fewer nodes than declared).
    """
    num_nodes = -1
    names: List[str] = []
    widths = heights = terminal = None
    count = 0
    for line in _iter_content_lines(path):
        fields = line.split()
        key = fields[0]
        if key == "NumNodes":
            num_nodes = _header_count(path, line, "NumNodes")
            names = [""] * num_nodes
            widths = np.zeros(num_nodes, dtype=np.float64)
            heights = np.zeros(num_nodes, dtype=np.float64)
            terminal = np.zeros(num_nodes, dtype=bool)
            continue
        if key == "NumTerminals":
            continue
        if num_nodes < 0:
            raise ValueError(
                f"{path}: node record before NumNodes header: {line!r}")
        if count >= num_nodes:
            raise ValueError(
                f"{path}: more than NumNodes={num_nodes} node records")
        assert widths is not None and heights is not None \
            and terminal is not None
        rest = fields[1:]
        is_term = "terminal" in rest
        dims = [f for f in rest if f != "terminal"]
        if len(dims) >= 2:
            widths[count] = float(dims[0]) * unit
            heights[count] = float(dims[1]) * unit
        elif len(dims) == 1:
            if default_height is None:
                raise ValueError(
                    f"{path}: node {key} has no height and no default")
            widths[count] = float(dims[0]) * unit
            heights[count] = default_height
        else:
            raise ValueError(f"{path}: node {key} has no dimensions")
        names[count] = key
        terminal[count] = is_term
        count += 1
    if num_nodes < 0:
        raise ValueError(f"{path}: missing NumNodes header")
    if count != num_nodes:
        raise ValueError(f"{path}: truncated .nodes file: "
                         f"expected {num_nodes} nodes, found {count}")
    assert widths is not None and heights is not None \
        and terminal is not None
    for i in range(num_nodes):
        if terminal[i]:
            netlist.add_cell(names[i], float(widths[i]),
                             float(heights[i]), fixed=True,
                             fixed_position=(0.0, 0.0, 0))
        else:
            netlist.add_cell(names[i], float(widths[i]),
                             float(heights[i]))


def read_nets_streaming(path: str, netlist: Netlist,
                        default_activity: float = 0.2) -> None:
    """Streaming ``.nets`` parser with preallocated CSR pin arrays.

    Pin records go straight into flat arrays sized from the
    ``NumNets`` / ``NumPins`` headers, dtype-minimized through
    :func:`repro.netlist.csr.index_dtype` (int32 until a circuit
    exceeds 2^31 - 1 pins — the overflow guard the dtype choice
    encodes).  Driver-defaulting rules match :func:`read_nets`
    exactly: a net listing no explicit directions, or directions but
    no driver, gets its first pin promoted to driver.

    Raises:
        ValueError: missing headers, a malformed ``NetDegree`` or pin
            line, an unknown cell name, more nets/pins than declared,
            or a truncated file (a net cut short, or fewer nets/pins
            than the headers declare).
    """
    num_nets = num_pins = -1
    net_names: List[str] = []
    net_ptr = pin_cell = pin_role = None
    cell_ids = netlist._cell_by_name
    net_i = 0
    pin_i = 0
    remaining = 0          # pins still expected for the open net
    net_start = 0
    saw_direction = False
    saw_driver = False
    for line in _iter_content_lines(path):
        fields = line.split()
        key = fields[0]
        if remaining:
            # a pin record of the open NetDegree block
            assert pin_cell is not None and pin_role is not None
            cid = cell_ids.get(key)
            if cid is None:
                raise ValueError(f"{path}: net {net_names[net_i]!r} "
                                 f"references unknown cell {key!r}")
            if pin_i >= num_pins:
                raise ValueError(
                    f"{path}: more than NumPins={num_pins} pin records")
            role = PinRole.SINK
            if len(fields) > 1 and fields[1] in _ROLE_OF_DIRECTION:
                role = _ROLE_OF_DIRECTION[fields[1]]
                saw_direction = True
            pin_cell[pin_i] = cid
            pin_role[pin_i] = _ROLE_CODE[role]
            saw_driver = saw_driver or role is PinRole.DRIVER
            pin_i += 1
            remaining -= 1
            if remaining == 0:
                # close the block: apply the driver-defaulting rules
                if pin_i > net_start and (not saw_direction
                                          or not saw_driver):
                    pin_role[net_start] = _ROLE_DRIVER
                net_i += 1
            continue
        if key == "NumNets":
            num_nets = _header_count(path, line, "NumNets")
            continue
        if key == "NumPins":
            num_pins = _header_count(path, line, "NumPins")
            continue
        if key != "NetDegree":
            raise ValueError(f"{path}: expected NetDegree, got {line!r}")
        if num_nets < 0 or num_pins < 0:
            raise ValueError(f"{path}: NetDegree before NumNets/"
                             f"NumPins headers: {line!r}")
        if net_ptr is None:
            dtype = index_dtype(max(num_pins, netlist.num_cells))
            net_ptr = np.zeros(num_nets + 1, dtype=np.int64)
            pin_cell = np.zeros(num_pins, dtype=dtype)
            pin_role = np.zeros(num_pins, dtype=np.uint8)
        if net_i >= num_nets:
            raise ValueError(
                f"{path}: more than NumNets={num_nets} nets")
        parts = line.replace(":", " ").split()
        try:
            degree = int(parts[1])
        except (IndexError, ValueError):
            raise ValueError(
                f"{path}: malformed NetDegree line: {line!r}") from None
        net_names.append(parts[2] if len(parts) > 2 else f"net{net_i}")
        net_start = pin_i
        net_ptr[net_i] = net_start
        remaining = degree
        saw_direction = False
        saw_driver = False
        if degree == 0:
            net_i += 1
    if num_nets < 0 or num_pins < 0:
        raise ValueError(f"{path}: missing NumNets/NumPins headers")
    if remaining:
        raise ValueError(f"{path}: truncated .nets file: net "
                         f"{net_names[-1]!r} is missing {remaining} "
                         f"of its pins")
    if net_i != num_nets:
        raise ValueError(f"{path}: truncated .nets file: expected "
                         f"{num_nets} nets, found {net_i}")
    if pin_i != num_pins:
        raise ValueError(f"{path}: NumPins={num_pins} but found "
                         f"{pin_i} pin records")
    assert net_ptr is not None and pin_cell is not None \
        and pin_role is not None
    net_ptr[num_nets] = pin_i
    for i in range(num_nets):
        lo, hi = int(net_ptr[i]), int(net_ptr[i + 1])
        pins = [(int(pin_cell[p]),
                 PinRole.DRIVER if pin_role[p] == _ROLE_DRIVER
                 else PinRole.SINK)
                for p in range(lo, hi)]
        netlist.add_net(net_names[i], pins, activity=default_activity)


def read_bookshelf_streaming(prefix: str, unit: float = 1e-6,
                             default_activity: float = 0.2) -> Netlist:
    """Streaming twin of :func:`read_bookshelf` for full-size files.

    Reads ``<prefix>.nodes`` and ``<prefix>.nets`` (plus ``.pl`` if
    present) through the chunked, preallocated parsers, so peak memory
    during the parse is bounded by the attribute/CSR arrays (plus the
    netlist being built) rather than the file's line list.  On
    well-formed input the result is identical to the buffered reader,
    which the round-trip tests assert circuit by circuit.
    """
    netlist = Netlist(name=os.path.basename(prefix))
    read_nodes_streaming(prefix + ".nodes", netlist, unit=unit)
    read_nets_streaming(prefix + ".nets", netlist,
                        default_activity=default_activity)
    if os.path.exists(prefix + ".pl"):
        read_pl(prefix + ".pl", netlist, unit=unit)
    netlist.validate()
    return netlist


def write_nodes(path: str, netlist: Netlist, unit: float = 1e-6) -> None:
    """Write a ``.nodes`` file (signal cells only)."""
    with open(path, "w") as f:
        f.write("UCLA nodes 1.0\n")
        f.write(f"NumNodes : {netlist.num_cells}\n")
        f.write(f"NumTerminals : {len(netlist.fixed_cells())}\n")
        for cell in netlist.cells:
            w = cell.width / unit
            h = cell.height / unit
            suffix = " terminal" if cell.fixed else ""
            f.write(f"  {cell.name} {w:.6f} {h:.6f}{suffix}\n")


def write_nets(path: str, netlist: Netlist) -> None:
    """Write a ``.nets`` file (signal nets only; TRR nets are virtual)."""
    nets = netlist.signal_nets()
    num_pins = sum(n.degree for n in nets)
    with open(path, "w") as f:
        f.write("UCLA nets 1.0\n")
        f.write(f"NumNets : {len(nets)}\n")
        f.write(f"NumPins : {num_pins}\n")
        for net in nets:
            f.write(f"NetDegree : {net.degree} {net.name}\n")
            for cid, role in net.pins:
                f.write(f"  {netlist.cells[cid].name} "
                        f"{_DIRECTION_OF_ROLE[role]}\n")


def write_pl(path: str, netlist: Netlist, positions, unit: float = 1e-6
             ) -> None:
    """Write a ``.pl`` file from a :class:`Placement`-like object with
    ``x``/``y``/``z`` arrays (cell centres; corners are written)."""
    with open(path, "w") as f:
        f.write("UCLA pl 1.0\n")
        for cell in netlist.cells:
            x = (positions.x[cell.id] - 0.5 * cell.width) / unit
            y = (positions.y[cell.id] - 0.5 * cell.height) / unit
            z = int(positions.z[cell.id])
            f.write(f"  {cell.name} {x:.6f} {y:.6f} {z}\n")


def write_bookshelf(prefix: str, netlist: Netlist, positions=None,
                    unit: float = 1e-6) -> None:
    """Write ``<prefix>.nodes`` / ``.nets`` (and ``.pl`` when positions
    are given)."""
    write_nodes(prefix + ".nodes", netlist, unit=unit)
    write_nets(prefix + ".nets", netlist)
    if positions is not None:
        write_pl(prefix + ".pl", netlist, positions, unit=unit)
