"""Reader/writer for the UCLA Bookshelf placement format.

The IBM-PLACE benchmark suite the paper evaluates on is distributed in
this format.  We support the three files placement needs:

- ``.nodes`` — cell names and dimensions, ``terminal`` keyword for pads;
- ``.nets``  — hypergraph nets with per-pin direction (``O`` = output /
  driver, ``I`` = input / sink, ``B`` = bidirectional, treated as sink);
- ``.pl``    — cell positions (used for fixed terminals and for dumping
  results).

Dimensions in Bookshelf files are in abstract "units"; a ``unit`` scale
factor converts them to metres on read (IBM-PLACE units are on a ~1 µm
grid, so the default scale is 1e-6).

The writer emits files the reader round-trips exactly, so placements can
be checkpointed to disk and reloaded.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.netlist.net import PinRole
from repro.netlist.netlist import Netlist

_ROLE_OF_DIRECTION = {"O": PinRole.DRIVER, "I": PinRole.SINK,
                      "B": PinRole.SINK}
_DIRECTION_OF_ROLE = {PinRole.DRIVER: "O", PinRole.SINK: "I"}


def _content_lines(path: str) -> List[str]:
    """Non-empty, non-comment lines of a Bookshelf file.

    The first line of every Bookshelf file is a format banner (``UCLA
    nodes 1.0`` etc.) which is skipped along with ``#`` comments.
    """
    with open(path) as f:
        raw = f.readlines()
    lines = []
    for i, line in enumerate(raw):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if i == 0 and stripped.upper().startswith("UCLA"):
            continue
        lines.append(stripped)
    return lines


def read_nodes(path: str, netlist: Netlist, unit: float = 1e-6,
               default_height: Optional[float] = None) -> None:
    """Parse a ``.nodes`` file into an existing (usually empty) netlist.

    Terminals are added as fixed cells at the origin; their true
    positions come later from :func:`read_pl`.

    Args:
        path: the ``.nodes`` file.
        netlist: destination netlist; cells are appended.
        unit: metres per Bookshelf unit.
        default_height: height for nodes listed without one, metres.
    """
    for line in _content_lines(path):
        fields = line.split()
        key = fields[0]
        if key in ("NumNodes", "NumTerminals"):
            continue
        name = fields[0]
        rest = [f for f in fields[1:]]
        terminal = "terminal" in rest
        dims = [f for f in rest if f != "terminal"]
        if len(dims) >= 2:
            width = float(dims[0]) * unit
            height = float(dims[1]) * unit
        elif len(dims) == 1:
            width = float(dims[0]) * unit
            if default_height is None:
                raise ValueError(
                    f"{path}: node {name} has no height and no default")
            height = default_height
        else:
            raise ValueError(f"{path}: node {name} has no dimensions")
        if terminal:
            netlist.add_cell(name, width, height, fixed=True,
                             fixed_position=(0.0, 0.0, 0))
        else:
            netlist.add_cell(name, width, height)


def read_nets(path: str, netlist: Netlist,
              default_activity: float = 0.2) -> None:
    """Parse a ``.nets`` file into a netlist whose cells already exist.

    Nets whose first listed pin has no explicit direction get the first
    pin as driver — the convention the IBM-PLACE conversion scripts used.
    """
    lines = _content_lines(path)
    i = 0
    net_count = 0
    while i < len(lines):
        fields = lines[i].split()
        if fields[0] in ("NumNets", "NumPins"):
            i += 1
            continue
        if fields[0] != "NetDegree":
            raise ValueError(f"{path}: expected NetDegree, got {lines[i]!r}")
        # "NetDegree : <k> [name]"
        parts = lines[i].replace(":", " ").split()
        degree = int(parts[1])
        name = parts[2] if len(parts) > 2 else f"net{net_count}"
        i += 1
        pins: List[Tuple[int, PinRole]] = []
        saw_direction = False
        for _ in range(degree):
            pf = lines[i].split()
            cell_name = pf[0]
            role = PinRole.SINK
            if len(pf) > 1 and pf[1] in _ROLE_OF_DIRECTION:
                role = _ROLE_OF_DIRECTION[pf[1]]
                saw_direction = True
            pins.append((netlist.cell(cell_name).id, role))
            i += 1
        if not saw_direction and pins:
            pins[0] = (pins[0][0], PinRole.DRIVER)
        elif pins and not any(r is PinRole.DRIVER for _, r in pins):
            pins[0] = (pins[0][0], PinRole.DRIVER)
        netlist.add_net(name, pins, activity=default_activity)
        net_count += 1


def read_pl(path: str, netlist: Netlist, unit: float = 1e-6
            ) -> Dict[str, Tuple[float, float, int]]:
    """Parse a ``.pl`` file; returns ``{cell name: (x, y, layer)}``.

    Fixed cells in the netlist get their ``fixed_position`` updated in
    place.  Positions in ``.pl`` files are lower-left corners; they are
    converted to cell centres.  An optional fourth numeric column is read
    as the layer index (our 3D extension); 2D files default to layer 0.
    """
    positions: Dict[str, Tuple[float, float, int]] = {}
    for line in _content_lines(path):
        fields = line.split()
        name = fields[0]
        if name not in netlist._cell_by_name:
            raise ValueError(f"{path}: unknown cell {name!r}")
        x = float(fields[1]) * unit
        y = float(fields[2]) * unit
        layer = 0
        if len(fields) > 3:
            try:
                layer = int(fields[3])
            except ValueError:
                layer = 0  # orientation token such as ": N"
        cell = netlist.cell(name)
        cx = x + 0.5 * cell.width
        cy = y + 0.5 * cell.height
        positions[name] = (cx, cy, layer)
        if cell.fixed:
            cell.fixed_position = (cx, cy, layer)
    return positions


def read_bookshelf(prefix: str, unit: float = 1e-6,
                   default_activity: float = 0.2) -> Netlist:
    """Read ``<prefix>.nodes`` and ``<prefix>.nets`` (plus ``.pl`` if
    present) into a fresh netlist."""
    netlist = Netlist(name=os.path.basename(prefix))
    read_nodes(prefix + ".nodes", netlist, unit=unit)
    read_nets(prefix + ".nets", netlist, default_activity=default_activity)
    if os.path.exists(prefix + ".pl"):
        read_pl(prefix + ".pl", netlist, unit=unit)
    netlist.validate()
    return netlist


def write_nodes(path: str, netlist: Netlist, unit: float = 1e-6) -> None:
    """Write a ``.nodes`` file (signal cells only)."""
    with open(path, "w") as f:
        f.write("UCLA nodes 1.0\n")
        f.write(f"NumNodes : {netlist.num_cells}\n")
        f.write(f"NumTerminals : {len(netlist.fixed_cells())}\n")
        for cell in netlist.cells:
            w = cell.width / unit
            h = cell.height / unit
            suffix = " terminal" if cell.fixed else ""
            f.write(f"  {cell.name} {w:.6f} {h:.6f}{suffix}\n")


def write_nets(path: str, netlist: Netlist) -> None:
    """Write a ``.nets`` file (signal nets only; TRR nets are virtual)."""
    nets = netlist.signal_nets()
    num_pins = sum(n.degree for n in nets)
    with open(path, "w") as f:
        f.write("UCLA nets 1.0\n")
        f.write(f"NumNets : {len(nets)}\n")
        f.write(f"NumPins : {num_pins}\n")
        for net in nets:
            f.write(f"NetDegree : {net.degree} {net.name}\n")
            for cid, role in net.pins:
                f.write(f"  {netlist.cells[cid].name} "
                        f"{_DIRECTION_OF_ROLE[role]}\n")


def write_pl(path: str, netlist: Netlist, positions, unit: float = 1e-6
             ) -> None:
    """Write a ``.pl`` file from a :class:`Placement`-like object with
    ``x``/``y``/``z`` arrays (cell centres; corners are written)."""
    with open(path, "w") as f:
        f.write("UCLA pl 1.0\n")
        for cell in netlist.cells:
            x = (positions.x[cell.id] - 0.5 * cell.width) / unit
            y = (positions.y[cell.id] - 0.5 * cell.height) / unit
            z = int(positions.z[cell.id])
            f.write(f"  {cell.name} {x:.6f} {y:.6f} {z}\n")


def write_bookshelf(prefix: str, netlist: Netlist, positions=None,
                    unit: float = 1e-6) -> None:
    """Write ``<prefix>.nodes`` / ``.nets`` (and ``.pl`` when positions
    are given)."""
    write_nodes(prefix + ".nodes", netlist, unit=unit)
    write_nets(prefix + ".nets", netlist)
    if positions is not None:
        write_pl(prefix + ".pl", netlist, positions, unit=unit)
