"""Dtype-minimized CSR views of a netlist's signal structure.

:class:`ObjectiveState` (and anything else that wants vectorized
net/pin kernels) needs the same handful of flat arrays: the net->pin
CSR over unique cell ids, the driver CSR, the cell->net incidence CSR
and the sorted membership keys.  Building them walks every net's
Python pin list — cheap once, wasteful when a sweep or the placement
service evaluates the same circuit many times.  This module builds
them once per netlist *content*:

- per-instance: the result is cached on the :class:`Netlist` and
  invalidated when a cell or signal net is added (TRR nets are
  excluded from the signal structure, so injecting them does not
  invalidate);
- across instances: when the netlist carries a ``content_key`` (set by
  :mod:`repro.netlist.cache` when a circuit is served from the
  content-addressed netlist cache), the CSR is shared through a small
  keyed store, so re-submissions of the same circuit skip the rebuild
  entirely.

Index arrays are dtype-minimized: int32 when every index and every
pin count fits (``ranges allow``), int64 otherwise — full ibm01 needs
~51k pin entries, a factor-2 smaller resident set and half the bytes
to ship than int64.  The sorted membership *keys* are always int64:
they encode ``net * num_cells + cell`` products that overflow int32
long before the index arrays do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple

import numpy as np

from repro.analysis import FloatArray, IntArray

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netlist.netlist import Netlist

__all__ = ["SignalCSR", "build_signal_csr", "index_dtype", "signal_csr"]

#: Largest count an int32 index array may address.
_INT32_MAX = np.iinfo(np.int32).max


def index_dtype(max_value: int) -> np.dtype:
    """The smallest supported index dtype that can hold ``max_value``.

    int32 where ranges allow, int64 beyond — the guard that keeps a
    >2-billion-pin parse from silently wrapping.
    """
    return np.dtype(np.int32 if max_value <= _INT32_MAX else np.int64)


@dataclass(frozen=True)
class SignalCSR:
    """Flat signal-net structure shared by vectorized kernels.

    All index arrays use the minimized dtype of :func:`index_dtype`;
    consumers whose arithmetic can overflow int32 (key encodings,
    ``reduceat`` offsets into much larger arrays) must upcast at the
    point of use.

    Attributes:
        num_cells: cell count of the owning netlist.
        net_ids: netlist net id per signal net (nets with pins, TRR
            excluded), in net order.
        net_ptr: length ``m + 1``; net ``e``'s unique pins are
            ``pin_cell[net_ptr[e]:net_ptr[e + 1]]``.
        pin_cell: unique cell ids per net, first-occurrence pin order.
        pin_net: owning local net index per ``pin_cell`` entry.
        pin_key: int64 ``net * num_cells + cell`` membership keys,
            globally sorted for ``searchsorted`` queries.
        drv_ptr, drv_cell, drv_net: driver CSR (with multiplicity).
        cell_net_ptr, cell_net_idx: cell -> local net incidence CSR.
        cell_net_drvmult: driver-pin multiplicity per incidence entry.
    """

    num_cells: int
    net_ids: IntArray
    net_ptr: IntArray
    pin_cell: IntArray
    pin_net: IntArray
    pin_key: IntArray
    drv_ptr: IntArray
    drv_cell: IntArray
    drv_net: IntArray
    cell_net_ptr: IntArray
    cell_net_idx: IntArray
    cell_net_drvmult: FloatArray

    @property
    def num_nets(self) -> int:
        """Signal net count."""
        return len(self.net_ptr) - 1

    @property
    def net_deg(self) -> IntArray:
        """Unique-pin count per signal net."""
        return np.diff(self.net_ptr)

    @property
    def nbytes(self) -> int:
        """Total bytes of all component arrays."""
        return sum(int(getattr(self, f).nbytes) for f in (
            "net_ids", "net_ptr", "pin_cell", "pin_net", "pin_key",
            "drv_ptr", "drv_cell", "drv_net", "cell_net_ptr",
            "cell_net_idx", "cell_net_drvmult"))

    def pin_lists(self) -> List[List[int]]:
        """Per-net unique pin lists (the scalar-path mirror)."""
        if self.num_nets == 0:
            return []
        return [p.tolist()
                for p in np.split(self.pin_cell, self.net_ptr[1:-1])]

    def driver_lists(self) -> List[List[int]]:
        """Per-net driver lists, with multiplicity."""
        if self.num_nets == 0:
            return []
        return [d.tolist()
                for d in np.split(self.drv_cell, self.drv_ptr[1:-1])]


def build_signal_csr(netlist: "Netlist") -> SignalCSR:
    """Build the signal CSR structure by walking the netlist once."""
    n_cells = netlist.num_cells
    net_ids: List[int] = []
    pins: List[List[int]] = []
    drivers: List[List[int]] = []
    for net in netlist.nets:
        if net.is_trr or not net.pins:
            continue
        net_ids.append(net.id)
        pins.append(net.unique_cell_ids)
        drivers.append(net.driver_ids)
    m = len(pins)
    total_pins = sum(len(p) for p in pins)
    total_drv = sum(len(d) for d in drivers)
    dtype = index_dtype(max(n_cells, len(netlist.nets), total_pins,
                            total_drv))

    deg = np.fromiter((len(p) for p in pins), dtype=dtype, count=m)
    net_ptr = np.zeros(m + 1, dtype=dtype)
    np.cumsum(deg, out=net_ptr[1:])
    pin_cell = np.fromiter((c for p in pins for c in p), dtype=dtype,
                           count=total_pins)
    pin_net = np.repeat(np.arange(m, dtype=dtype), deg)

    drv_deg = np.fromiter((len(d) for d in drivers), dtype=dtype,
                          count=m)
    drv_ptr = np.zeros(m + 1, dtype=dtype)
    np.cumsum(drv_deg, out=drv_ptr[1:])
    drv_cell = np.fromiter((c for d in drivers for c in d), dtype=dtype,
                           count=total_drv)
    drv_net = np.repeat(np.arange(m, dtype=dtype), drv_deg)

    # sorted membership keys (int64: the product overflows int32 first)
    scale = np.int64(max(n_cells, 1))
    keys = pin_net.astype(np.int64) * scale + pin_cell.astype(np.int64)
    pin_key = np.sort(keys, kind="stable")

    # cell -> net incidence: a stable sort of pin_cell groups each
    # cell's entries while preserving net order within the cell —
    # exactly the order a per-net append loop would produce
    order = np.argsort(pin_cell, kind="stable")
    cdeg = np.bincount(pin_cell, minlength=n_cells).astype(dtype) \
        if total_pins else np.zeros(n_cells, dtype=dtype)
    cell_net_ptr = np.zeros(n_cells + 1, dtype=dtype)
    np.cumsum(cdeg, out=cell_net_ptr[1:])
    cell_net_idx = pin_net[order]

    # driver-pin multiplicity per (cell, local net) incidence entry
    if total_drv:
        drv_keys = (drv_cell.astype(np.int64) * np.int64(max(m, 1))
                    + drv_net.astype(np.int64))
        uniq, counts = np.unique(drv_keys, return_counts=True)
        owner = np.repeat(np.arange(n_cells, dtype=np.int64), cdeg)
        query = owner * np.int64(max(m, 1)) + cell_net_idx.astype(
            np.int64)
        pos = np.searchsorted(uniq, query)
        pos_clipped = np.minimum(pos, len(uniq) - 1)
        hit = uniq[pos_clipped] == query
        drvmult = np.where(hit, counts[pos_clipped], 0).astype(
            np.float64)
    else:
        drvmult = np.zeros(total_pins, dtype=np.float64)

    return SignalCSR(
        num_cells=n_cells,
        net_ids=np.asarray(net_ids, dtype=dtype),
        net_ptr=net_ptr, pin_cell=pin_cell, pin_net=pin_net,
        pin_key=pin_key, drv_ptr=drv_ptr, drv_cell=drv_cell,
        drv_net=drv_net, cell_net_ptr=cell_net_ptr,
        cell_net_idx=cell_net_idx, cell_net_drvmult=drvmult)


#: Content-keyed CSR store: circuits served repeatedly through the
#: netlist cache (sweeps, service resubmissions) share one build.
_BY_CONTENT_KEY: Dict[str, SignalCSR] = {}

#: Keep the keyed store small; entries are a few MB at full scale.
_MAX_KEYED = 8


def signal_csr(netlist: "Netlist") -> SignalCSR:
    """The netlist's signal CSR, built at most once per content.

    Lookup order: the instance cache (invalidated on structural
    mutation), then the content-keyed store for netlists carrying a
    ``content_key``, then a fresh :func:`build_signal_csr`.
    """
    cached = netlist._signal_csr
    if cached is not None:
        return cached
    key = netlist.content_key
    if key is not None and key in _BY_CONTENT_KEY:
        csr = _BY_CONTENT_KEY[key]
        if csr.num_cells == netlist.num_cells:
            # lint: ok[RPL001] this module owns the Netlist-side slot
            netlist._signal_csr = csr
            return csr
    csr = build_signal_csr(netlist)
    # lint: ok[RPL001] this module owns the Netlist-side slot
    netlist._signal_csr = csr
    if key is not None:
        if len(_BY_CONTENT_KEY) >= _MAX_KEYED:
            _BY_CONTENT_KEY.pop(next(iter(_BY_CONTENT_KEY)))
        _BY_CONTENT_KEY[key] = csr
    return csr


def clear_keyed_store() -> None:
    """Drop the content-keyed store (tests)."""
    _BY_CONTENT_KEY.clear()


def keyed_store_stats() -> Tuple[int, int]:
    """(entries, total bytes) of the content-keyed store."""
    total = sum(c.nbytes for c in _BY_CONTENT_KEY.values())
    return len(_BY_CONTENT_KEY), total
