"""The ibm01-ibm18 benchmark suite (Table 1 of the paper), regenerated.

Each profile records the cell count and total cell area the paper lists
in Table 1.  :func:`load_benchmark` instantiates a synthetic equivalent
through :mod:`repro.netlist.generator` at any ``scale``: at ``scale=1.0``
the circuit has the full published cell count and area; smaller scales
shrink both proportionally (area scales with cell count so cell-size
statistics are invariant).  Reduced scales keep pure-Python experiment
sweeps tractable; see DESIGN.md substitution #1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.netlist.generator import GeneratorSpec, generate_netlist
from repro.netlist.netlist import Netlist


@dataclass(frozen=True)
class BenchmarkProfile:
    """Published statistics of one IBM-PLACE circuit (Table 1).

    Attributes:
        name: circuit name (``ibm01`` .. ``ibm18``).
        cells: number of cells.
        area_mm2: total cell area in mm^2.
    """

    name: str
    cells: int
    area_mm2: float

    @property
    def area_m2(self) -> float:
        """Total cell area in square metres."""
        return self.area_mm2 * 1e-6

    @property
    def average_cell_area_m2(self) -> float:
        """Mean cell footprint, square metres."""
        return self.area_m2 / self.cells


#: Table 1 of the paper, verbatim.
SUITE_PROFILES: Dict[str, BenchmarkProfile] = {
    p.name: p for p in [
        BenchmarkProfile("ibm01", 12282, 0.060),
        BenchmarkProfile("ibm02", 19321, 0.086),
        BenchmarkProfile("ibm03", 22207, 0.090),
        BenchmarkProfile("ibm04", 26633, 0.122),
        BenchmarkProfile("ibm05", 29347, 0.150),
        BenchmarkProfile("ibm06", 32185, 0.117),
        BenchmarkProfile("ibm07", 45135, 0.197),
        BenchmarkProfile("ibm08", 50977, 0.214),
        BenchmarkProfile("ibm09", 51746, 0.221),
        BenchmarkProfile("ibm10", 67692, 0.377),
        BenchmarkProfile("ibm11", 68525, 0.287),
        BenchmarkProfile("ibm12", 69663, 0.415),
        BenchmarkProfile("ibm13", 81508, 0.326),
        BenchmarkProfile("ibm14", 146009, 0.680),
        BenchmarkProfile("ibm15", 158244, 0.634),
        BenchmarkProfile("ibm16", 182137, 0.892),
        BenchmarkProfile("ibm17", 183102, 1.040),
        BenchmarkProfile("ibm18", 210323, 0.988),
    ]
}


def benchmark_names() -> List[str]:
    """Suite circuit names in published order."""
    return list(SUITE_PROFILES.keys())


def load_benchmark(name: str, scale: float = 1.0, seed: int = 0,
                   min_cells: int = 64) -> Netlist:
    """Instantiate a synthetic equivalent of one Table 1 circuit.

    Args:
        name: one of ``ibm01`` .. ``ibm18``.
        scale: fraction of the published cell count to generate
            (``1.0`` = full size).  Total area scales along, so the cell
            size distribution is scale-invariant.
        seed: generator seed (combined with the circuit index so
            different circuits are decorrelated at any seed).
        min_cells: floor on the generated cell count.

    Returns:
        A validated netlist whose name is ``<name>`` at full scale or
        ``<name>@<scale>`` otherwise.
    """
    if name not in SUITE_PROFILES:
        raise KeyError(f"unknown benchmark {name!r}; "
                       f"choose from {benchmark_names()}")
    if scale <= 0:
        raise ValueError("scale must be positive")
    profile = SUITE_PROFILES[name]
    cells = max(min_cells, int(round(profile.cells * scale)))
    area = profile.area_m2 * (cells / profile.cells)
    index = benchmark_names().index(name)
    label = name if abs(scale - 1.0) < 1e-12 else f"{name}@{scale:g}"
    spec = GeneratorSpec(name=label, num_cells=cells, total_area=area,
                         seed=seed * 1000 + index)
    return generate_netlist(spec)
