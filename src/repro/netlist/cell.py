"""Standard cells and fixed terminals."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass
class Cell:
    """A standard cell (or a fixed terminal / IO pad).

    Attributes:
        id: dense integer index assigned by the owning netlist.
        name: instance name, unique within the netlist.
        width: footprint width in metres.
        height: footprint height in metres (the row height for movable
            standard cells).
        fixed: True for terminals/pads that the placer must not move.
        fixed_position: ``(x, y, layer)`` for fixed cells, else ``None``.
            x/y are the cell centre in metres.
    """

    id: int
    name: str
    width: float
    height: float
    fixed: bool = False
    fixed_position: Optional[Tuple[float, float, int]] = None

    def __post_init__(self) -> None:
        if self.width < 0 or self.height < 0:
            raise ValueError(f"cell {self.name}: negative dimensions")
        if self.fixed and self.fixed_position is None:
            raise ValueError(f"cell {self.name}: fixed cells need a position")

    @property
    def area(self) -> float:
        """Footprint area, square metres."""
        return self.width * self.height

    @property
    def movable(self) -> bool:
        """Whether the placer is allowed to move this cell."""
        return not self.fixed
