"""Hypergraph nets with pin roles and switching activity."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Tuple


class PinRole(enum.Enum):
    """Electrical role of a pin on a net.

    The power model (Eqs. 4-5, 10-11 of the paper) needs to know which
    cells *drive* a net — the driver dissipates the net's dynamic power —
    and how many input pins the net fans out to.
    """

    DRIVER = "driver"
    SINK = "sink"


@dataclass
class Net:
    """A (hyper)net connecting two or more cells.

    Attributes:
        id: dense integer index assigned by the owning netlist.
        name: net name, unique within the netlist.
        pins: list of ``(cell_id, role)`` pairs.  A cell may legitimately
            appear more than once (e.g. multiple input pins of one cell on
            the same net).
        activity: switching activity ``a_i`` in Eq. 4, the expected number
            of transitions per clock cycle (0..1].
        is_trr: True for virtual thermal-resistance-reduction nets
            (Section 3.2).  TRR nets are excluded from all wirelength /
            via metrics and from the power model; they exist only to pull
            their cell toward the heat sink.
    """

    id: int
    name: str
    pins: List[Tuple[int, PinRole]] = field(default_factory=list)
    activity: float = 0.2
    is_trr: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.activity <= 1.0:
            raise ValueError(
                f"net {self.name}: activity {self.activity} outside [0, 1]")

    @property
    def degree(self) -> int:
        """Number of pins on the net."""
        return len(self.pins)

    @property
    def cell_ids(self) -> List[int]:
        """Ids of all cells the net touches (with multiplicity)."""
        return [cid for cid, _ in self.pins]

    @property
    def unique_cell_ids(self) -> List[int]:
        """Ids of all distinct cells the net touches, in pin order."""
        seen = set()
        out = []
        for cid, _ in self.pins:
            if cid not in seen:
                seen.add(cid)
                out.append(cid)
        return out

    @property
    def driver_ids(self) -> List[int]:
        """Ids of cells with a DRIVER pin on this net."""
        return [cid for cid, role in self.pins if role is PinRole.DRIVER]

    @property
    def sink_ids(self) -> List[int]:
        """Ids of cells with a SINK pin on this net (with multiplicity)."""
        return [cid for cid, role in self.pins if role is PinRole.SINK]

    @property
    def num_output_pins(self) -> int:
        """``n_i^output pins`` of Eqs. 6-8: driver pins on the net."""
        return sum(1 for _, role in self.pins if role is PinRole.DRIVER)

    @property
    def num_input_pins(self) -> int:
        """``n_i^input pins`` of Eq. 5: sink pins on the net."""
        return sum(1 for _, role in self.pins if role is PinRole.SINK)
