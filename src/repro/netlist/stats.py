"""Netlist statistics, including Rent-exponent estimation.

The synthetic generator's claim to represent the IBM-PLACE circuits
rests on matching their *statistics* — net degree distribution and
wiring locality.  This module measures both:

- :func:`summarize` — cell/net/pin counts, degree histogram, size stats;
- :func:`rent_exponent` — the Rent's-rule exponent ``p`` in
  ``T = t * g^p`` (external terminals vs block size), estimated the
  standard way: recursively bisect the netlist with the library's own
  partitioner, record (cells, cut terminals) at every region, and fit
  the log-log slope.

Typical standard-cell circuits have ``p ~ 0.5-0.75``; values near 1.0
mean no locality (random wiring), values near 0 a chain.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.netlist.netlist import Netlist
from repro.partition import BisectionConfig, Hypergraph, bisect


@dataclass
class NetlistSummary:
    """Headline statistics of a netlist.

    Attributes:
        name: netlist name.
        cells, nets, pins: counts (signal nets only).
        avg_degree: mean pins per signal net.
        degree_histogram: pin-count -> net count.
        total_area: movable cell area, m^2.
        avg_cell_width / avg_cell_height: metres.
    """

    name: str
    cells: int
    nets: int
    pins: int
    avg_degree: float
    degree_histogram: Dict[int, int]
    total_area: float
    avg_cell_width: float
    avg_cell_height: float

    def text(self) -> str:
        """Human-readable multi-line summary."""
        hist = ", ".join(f"{d}:{c}" for d, c in
                         sorted(self.degree_histogram.items())[:8])
        return "\n".join([
            f"netlist {self.name}",
            f"  cells {self.cells}, nets {self.nets}, pins {self.pins} "
            f"(avg degree {self.avg_degree:.2f})",
            f"  degree histogram: {hist}",
            f"  total cell area {self.total_area*1e6:.4f} mm^2, "
            f"avg cell {self.avg_cell_width*1e6:.2f} x "
            f"{self.avg_cell_height*1e6:.2f} um",
        ])


def summarize(netlist: Netlist) -> NetlistSummary:
    """Compute the headline statistics of a netlist."""
    nets = netlist.signal_nets()
    pins = sum(n.degree for n in nets)
    return NetlistSummary(
        name=netlist.name,
        cells=netlist.num_cells,
        nets=len(nets),
        pins=pins,
        avg_degree=pins / len(nets) if nets else 0.0,
        degree_histogram=netlist.degree_histogram(),
        total_area=netlist.total_cell_area,
        avg_cell_width=netlist.average_cell_width,
        avg_cell_height=netlist.average_cell_height,
    )


def rent_exponent(netlist: Netlist, min_cells: int = 12,
                  seed: int = 0,
                  max_levels: int = 10) -> Tuple[float, float]:
    """Estimate the Rent exponent by recursive bisection.

    Args:
        netlist: the circuit to analyse.
        min_cells: stop recursing below this block size.
        seed: partitioner seed.
        max_levels: recursion depth cap.

    Returns:
        ``(p, t)`` — the fitted exponent and the Rent coefficient
        (terminals of a single cell).

    Raises:
        ValueError: if the netlist is too small to produce at least two
            distinct block sizes.
    """
    # hypergraph of the signal nets
    nets = [n.unique_cell_ids for n in netlist.signal_nets()
            if len(n.unique_cell_ids) >= 2]
    samples: List[Tuple[int, int]] = []

    def external_terminals(block: List[int], net_list) -> int:
        block_set = set(block)
        count = 0
        for pins in net_list:
            inside = any(p in block_set for p in pins)
            outside = any(p not in block_set for p in pins)
            if inside and outside:
                count += 1
        return count

    def recurse(block: List[int], level: int, rng) -> None:
        if len(block) < min_cells or level >= max_levels:
            return
        samples.append((len(block),
                        external_terminals(block, nets)))
        local = {cid: i for i, cid in enumerate(block)}
        sub_nets = []
        for pins in nets:
            inside = [local[p] for p in pins if p in local]
            if len(inside) >= 2:
                sub_nets.append(inside)
        graph = Hypergraph(len(block), sub_nets)
        parts, _ = bisect(graph, BisectionConfig(
            seed=int(rng.integers(0, 2 ** 31))))
        left = [cid for cid in block if parts[local[cid]] == 0]
        right = [cid for cid in block if parts[local[cid]] == 1]
        if left and right:
            recurse(left, level + 1, rng)
            recurse(right, level + 1, rng)

    rng = np.random.default_rng(seed)
    all_cells = [c.id for c in netlist.cells]
    recurse(all_cells, 0, rng)
    # the root sample has ~zero external terminals; drop zero-terminal
    # samples (log undefined) and need two distinct sizes to fit
    points = [(g, t) for g, t in samples if t > 0]
    sizes = {g for g, _ in points}
    if len(sizes) < 2:
        raise ValueError("netlist too small for a Rent fit")
    logs_g = np.log([g for g, _ in points])
    logs_t = np.log([t for _, t in points])
    p, log_t0 = np.polyfit(logs_g, logs_t, 1)
    return float(p), float(math.exp(log_t0))
