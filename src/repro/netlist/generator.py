"""Synthetic Rent's-rule netlist generation.

The paper evaluates on the IBM-PLACE suite, which cannot be shipped here,
so benchmarks are regenerated synthetically: cells with realistic size
distributions and nets with realistic degree distributions, wired with
*spatial locality* so the netlist has the clustered, partitionable
structure (Rent's rule) that real circuits have and that recursive
bisection exploits.

The construction mirrors the BEKU/PEKO family of placement example
generators: cells are given "home" coordinates on a virtual 2D grid, and
each net's sinks are drawn from a distance-decaying distribution around
its driver, with a small fraction of global (uniform) connections.  The
decay length is controlled by ``locality`` — smaller values give more
local netlists (lower Rent exponent).

DESIGN.md documents why this substitution preserves the paper's
tradeoff-curve shapes: the placer's behaviour depends on net-degree and
locality statistics, not on the specific logic function.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.analysis import FloatArray, IntArray
from repro.netlist.net import PinRole
from repro.netlist.netlist import Netlist

#: Net pin-count distribution modelled on the IBM-PLACE circuits:
#: dominated by 2-pin nets with a long fan-out tail (average ~3.1 pins).
DEFAULT_DEGREE_WEIGHTS: Dict[int, float] = {
    2: 0.58, 3: 0.18, 4: 0.09, 5: 0.05, 6: 0.04,
    8: 0.03, 12: 0.02, 20: 0.008, 40: 0.002,
}

#: Cell width distribution in row-height multiples (aspect ratios):
#: mostly small cells, occasional wide macro-ish cells.
DEFAULT_WIDTH_WEIGHTS: Dict[float, float] = {
    1.0: 0.35, 1.5: 0.30, 2.0: 0.18, 3.0: 0.10, 4.0: 0.05, 6.0: 0.02,
}


@dataclass
class GeneratorSpec:
    """Parameters of a synthetic benchmark.

    Attributes:
        name: netlist name.
        num_cells: number of movable standard cells.
        total_area: total cell area in square metres (sets the size
            distribution's scale).
        nets_per_cell: ratio of net count to cell count (IBM-PLACE
            circuits sit near 1.0-1.2).
        locality: sink-distance decay length as a fraction of the virtual
            grid's side; smaller = more local = lower Rent exponent.
        global_fraction: fraction of sinks drawn uniformly at random
            (long-range nets).
        degree_weights: net pin-count distribution.
        width_weights: cell aspect-ratio distribution.
        activity_range: switching activities drawn uniformly from this
            interval.
        seed: RNG seed; generation is fully deterministic given the spec.
    """

    name: str
    num_cells: int
    total_area: float
    nets_per_cell: float = 1.05
    locality: float = 0.06
    global_fraction: float = 0.08
    degree_weights: Dict[int, float] = field(
        default_factory=lambda: dict(DEFAULT_DEGREE_WEIGHTS))
    width_weights: Dict[float, float] = field(
        default_factory=lambda: dict(DEFAULT_WIDTH_WEIGHTS))
    activity_range: Tuple[float, float] = (0.05, 0.45)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_cells < 2:
            raise ValueError("need at least two cells")
        if self.total_area <= 0:
            raise ValueError("total area must be positive")
        if not 0 < self.locality <= 1:
            raise ValueError("locality must be in (0, 1]")
        if not 0 <= self.global_fraction <= 1:
            raise ValueError("global_fraction must be in [0, 1]")


def _sample_discrete(rng: np.random.Generator,
                     weights: Dict[float, float] | Dict[int, float],
                     size: int) -> FloatArray:
    keys = np.array(list(weights.keys()), dtype=np.float64)
    probs = np.array(list(weights.values()), dtype=np.float64)
    probs = probs / probs.sum()
    out: FloatArray = rng.choice(keys, size=size, p=probs)
    return out


def generate_netlist(spec: GeneratorSpec,
                     rng: Optional[np.random.Generator] = None
                     ) -> Netlist:
    """Generate a synthetic netlist from a spec.

    Returns a validated :class:`Netlist` with driver/sink pin roles and
    per-net switching activities.  The average cell height is chosen so
    the mean cell has aspect ratio ~1.75 (typical of standard-cell rows),
    and all widths are scaled so total area matches ``spec.total_area``
    exactly.

    Args:
        spec: the benchmark parameters.
        rng: generator to draw from; a fresh ``default_rng(spec.seed)``
            when omitted, so the same spec always yields the same
            netlist.
    """
    if rng is None:
        rng = np.random.default_rng(spec.seed)
    n = spec.num_cells

    # --- cells -------------------------------------------------------
    aspect = _sample_discrete(rng, spec.width_weights, n)
    mean_aspect = float(aspect.mean())
    avg_area = spec.total_area / n
    # avg_area = height * (mean_aspect * height)  =>  height:
    height = math.sqrt(avg_area / mean_aspect)
    widths = aspect * height
    # exact-area normalization
    widths *= spec.total_area / float((widths * height).sum())

    netlist = Netlist(name=spec.name)
    for i in range(n):
        netlist.add_cell(f"c{i}", float(widths[i]), float(height))

    # --- virtual home coordinates for locality ------------------------
    side = int(math.ceil(math.sqrt(n)))
    home_x = np.empty(n, dtype=np.float64)
    home_y = np.empty(n, dtype=np.float64)
    perm = rng.permutation(n)
    for rank, cid in enumerate(perm):
        home_x[cid] = rank % side
        home_y[cid] = rank // side

    # --- nets ----------------------------------------------------------
    num_nets = max(1, int(round(spec.nets_per_cell * n)))
    degrees = _sample_discrete(rng, spec.degree_weights, num_nets
                               ).astype(int)
    degrees = np.minimum(degrees, n)  # cannot exceed cell count
    drivers = rng.integers(0, n, size=num_nets)
    activities = rng.uniform(spec.activity_range[0],
                             spec.activity_range[1], size=num_nets)
    decay = max(1.0, spec.locality * side)

    # invert the home assignment: virtual grid slot -> occupying cell
    slot_table = np.full(side * side, -1, dtype=np.int64)
    slots = home_y.astype(np.int64) * side + home_x.astype(np.int64)
    slot_table[slots] = np.arange(n, dtype=np.int64)

    for i in range(num_nets):
        driver = int(drivers[i])
        degree = int(degrees[i])
        sinks = _pick_sinks(rng, driver, degree - 1, n, side,
                            home_x, home_y, decay, spec.global_fraction,
                            slot_table)
        pins = [(driver, PinRole.DRIVER)]
        pins.extend((s, PinRole.SINK) for s in sinks)
        netlist.add_net(f"n{i}", pins, activity=float(activities[i]))

    netlist.validate()
    return netlist


def generate_large_netlist(spec: GeneratorSpec,
                           rng: Optional[np.random.Generator] = None
                           ) -> Netlist:
    """Vectorized generator for large instances (100k-1M cells).

    Produces the same *family* of netlists as :func:`generate_netlist`
    — Rent's-rule locality, the same degree/width/activity
    distributions — but draws every net's sinks in flat array passes
    instead of a per-net rejection loop, so generation stays tractable
    and array memory stays bounded (index arrays are sized up front
    from the sampled degrees).  It is NOT sample-for-sample identical
    to the per-net generator: use one or the other for a given
    benchmark family, never mix seeds across them.

    Two deliberate simplifications versus the per-net path, both legal
    netlist shapes: a net may carry duplicate sink pins (real circuits
    connect several input pins of one cell to one net; metrics dedup
    via ``unique_cell_ids``), and sinks are not sorted within a net.

    Args:
        spec: the benchmark parameters.
        rng: generator to draw from; a fresh ``default_rng(spec.seed)``
            when omitted — the same spec always yields the same
            netlist.
    """
    if rng is None:
        rng = np.random.default_rng(spec.seed)
    n = spec.num_cells

    # --- cells (identical construction to the per-net path) ----------
    aspect = _sample_discrete(rng, spec.width_weights, n)
    mean_aspect = float(aspect.mean())
    avg_area = spec.total_area / n
    height = math.sqrt(avg_area / mean_aspect)
    widths = aspect * height
    widths *= spec.total_area / float((widths * height).sum())

    netlist = Netlist(name=spec.name)
    add_cell = netlist.add_cell
    for i in range(n):
        add_cell(f"c{i}", float(widths[i]), float(height))

    # --- virtual home coordinates for locality ------------------------
    side = int(math.ceil(math.sqrt(n)))
    perm = rng.permutation(n)
    ranks = np.empty(n, dtype=np.int64)
    ranks[perm] = np.arange(n, dtype=np.int64)
    home_x = (ranks % side).astype(np.float64)
    home_y = (ranks // side).astype(np.float64)
    slot_table = np.full(side * side, -1, dtype=np.int64)
    slot_table[ranks] = np.arange(n, dtype=np.int64)

    # --- nets: one flat pass over all sinks ----------------------------
    num_nets = max(1, int(round(spec.nets_per_cell * n)))
    degrees = _sample_discrete(rng, spec.degree_weights, num_nets
                               ).astype(np.int64)
    degrees = np.minimum(degrees, n)
    drivers = rng.integers(0, n, size=num_nets)
    activities = rng.uniform(spec.activity_range[0],
                             spec.activity_range[1], size=num_nets)
    decay = max(1.0, spec.locality * side)

    counts = degrees - 1  # sinks per net
    total = int(counts.sum())
    sink_net = np.repeat(np.arange(num_nets, dtype=np.int64), counts)
    sink_driver = drivers[sink_net]
    is_global = rng.random(total) < spec.global_fraction
    r = rng.exponential(decay, size=total)
    theta = rng.uniform(0.0, 2.0 * math.pi, size=total)
    gx = np.clip(np.round(home_x[sink_driver] + r * np.cos(theta)),
                 0, side - 1).astype(np.int64)
    gy = np.clip(np.round(home_y[sink_driver] + r * np.sin(theta)),
                 0, side - 1).astype(np.int64)
    sinks = slot_table[gy * side + gx]
    uniform = rng.integers(0, n, size=total)
    sinks = np.where(is_global | (sinks < 0), uniform, sinks)
    # a sink colliding with its driver shifts deterministically
    collide = sinks == sink_driver
    sinks = np.where(collide, (sinks + 1) % n, sinks)

    ptr = np.zeros(num_nets + 1, dtype=np.int64)
    np.cumsum(counts, out=ptr[1:])
    add_net = netlist.add_net
    for i in range(num_nets):
        pins = [(int(drivers[i]), PinRole.DRIVER)]
        pins.extend((int(s), PinRole.SINK)
                    for s in sinks[ptr[i]:ptr[i + 1]])
        add_net(f"n{i}", pins, activity=float(activities[i]))

    netlist.validate()
    return netlist


def _pick_sinks(rng: np.random.Generator, driver: int, count: int, n: int,
                side: int, home_x: FloatArray, home_y: FloatArray,
                decay: float, global_fraction: float,
                slot_table: IntArray) -> List[int]:
    """Pick ``count`` distinct sink cells around a driver's home location.

    Sinks are sampled at exponentially-decaying grid distance from the
    driver, with a ``global_fraction`` chance of being uniform over the
    whole grid.  Candidates are mapped back to cells by rounding the
    sampled coordinate to the nearest occupied grid point.
    """
    chosen: Set[int] = set()
    dx0 = float(home_x[driver])
    dy0 = float(home_y[driver])
    attempts = 0
    max_attempts = 40 * (count + 1)
    while len(chosen) < count and attempts < max_attempts:
        attempts += 1
        if rng.random() < global_fraction:
            cand = int(rng.integers(0, n))
        else:
            r = rng.exponential(decay)
            theta = rng.uniform(0.0, 2.0 * math.pi)
            gx = int(round(dx0 + r * math.cos(theta)))
            gy = int(round(dy0 + r * math.sin(theta)))
            gx = min(max(gx, 0), side - 1)
            gy = min(max(gy, 0), side - 1)
            cand = int(slot_table[gy * side + gx])
            if cand < 0:  # unoccupied slot beyond the last cell
                cand = int(rng.integers(0, n))
        if cand != driver and cand not in chosen:
            chosen.add(cand)
    # fall back to uniform fills if locality sampling stalled
    while len(chosen) < count:
        cand = int(rng.integers(0, n))
        if cand != driver and cand not in chosen:
            chosen.add(cand)
    return sorted(chosen)
