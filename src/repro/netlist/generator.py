"""Synthetic Rent's-rule netlist generation.

The paper evaluates on the IBM-PLACE suite, which cannot be shipped here,
so benchmarks are regenerated synthetically: cells with realistic size
distributions and nets with realistic degree distributions, wired with
*spatial locality* so the netlist has the clustered, partitionable
structure (Rent's rule) that real circuits have and that recursive
bisection exploits.

The construction mirrors the BEKU/PEKO family of placement example
generators: cells are given "home" coordinates on a virtual 2D grid, and
each net's sinks are drawn from a distance-decaying distribution around
its driver, with a small fraction of global (uniform) connections.  The
decay length is controlled by ``locality`` — smaller values give more
local netlists (lower Rent exponent).

DESIGN.md documents why this substitution preserves the paper's
tradeoff-curve shapes: the placer's behaviour depends on net-degree and
locality statistics, not on the specific logic function.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.analysis import FloatArray, IntArray
from repro.netlist.net import PinRole
from repro.netlist.netlist import Netlist

#: Net pin-count distribution modelled on the IBM-PLACE circuits:
#: dominated by 2-pin nets with a long fan-out tail (average ~3.1 pins).
DEFAULT_DEGREE_WEIGHTS: Dict[int, float] = {
    2: 0.58, 3: 0.18, 4: 0.09, 5: 0.05, 6: 0.04,
    8: 0.03, 12: 0.02, 20: 0.008, 40: 0.002,
}

#: Cell width distribution in row-height multiples (aspect ratios):
#: mostly small cells, occasional wide macro-ish cells.
DEFAULT_WIDTH_WEIGHTS: Dict[float, float] = {
    1.0: 0.35, 1.5: 0.30, 2.0: 0.18, 3.0: 0.10, 4.0: 0.05, 6.0: 0.02,
}


@dataclass
class GeneratorSpec:
    """Parameters of a synthetic benchmark.

    Attributes:
        name: netlist name.
        num_cells: number of movable standard cells.
        total_area: total cell area in square metres (sets the size
            distribution's scale).
        nets_per_cell: ratio of net count to cell count (IBM-PLACE
            circuits sit near 1.0-1.2).
        locality: sink-distance decay length as a fraction of the virtual
            grid's side; smaller = more local = lower Rent exponent.
        global_fraction: fraction of sinks drawn uniformly at random
            (long-range nets).
        degree_weights: net pin-count distribution.
        width_weights: cell aspect-ratio distribution.
        activity_range: switching activities drawn uniformly from this
            interval.
        seed: RNG seed; generation is fully deterministic given the spec.
    """

    name: str
    num_cells: int
    total_area: float
    nets_per_cell: float = 1.05
    locality: float = 0.06
    global_fraction: float = 0.08
    degree_weights: Dict[int, float] = field(
        default_factory=lambda: dict(DEFAULT_DEGREE_WEIGHTS))
    width_weights: Dict[float, float] = field(
        default_factory=lambda: dict(DEFAULT_WIDTH_WEIGHTS))
    activity_range: Tuple[float, float] = (0.05, 0.45)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_cells < 2:
            raise ValueError("need at least two cells")
        if self.total_area <= 0:
            raise ValueError("total area must be positive")
        if not 0 < self.locality <= 1:
            raise ValueError("locality must be in (0, 1]")
        if not 0 <= self.global_fraction <= 1:
            raise ValueError("global_fraction must be in [0, 1]")


def _sample_discrete(rng: np.random.Generator,
                     weights: Dict[float, float] | Dict[int, float],
                     size: int) -> FloatArray:
    keys = np.array(list(weights.keys()), dtype=np.float64)
    probs = np.array(list(weights.values()), dtype=np.float64)
    probs = probs / probs.sum()
    out: FloatArray = rng.choice(keys, size=size, p=probs)
    return out


def generate_netlist(spec: GeneratorSpec,
                     rng: Optional[np.random.Generator] = None
                     ) -> Netlist:
    """Generate a synthetic netlist from a spec.

    Returns a validated :class:`Netlist` with driver/sink pin roles and
    per-net switching activities.  The average cell height is chosen so
    the mean cell has aspect ratio ~1.75 (typical of standard-cell rows),
    and all widths are scaled so total area matches ``spec.total_area``
    exactly.

    Args:
        spec: the benchmark parameters.
        rng: generator to draw from; a fresh ``default_rng(spec.seed)``
            when omitted, so the same spec always yields the same
            netlist.
    """
    if rng is None:
        rng = np.random.default_rng(spec.seed)
    n = spec.num_cells

    # --- cells -------------------------------------------------------
    aspect = _sample_discrete(rng, spec.width_weights, n)
    mean_aspect = float(aspect.mean())
    avg_area = spec.total_area / n
    # avg_area = height * (mean_aspect * height)  =>  height:
    height = math.sqrt(avg_area / mean_aspect)
    widths = aspect * height
    # exact-area normalization
    widths *= spec.total_area / float((widths * height).sum())

    netlist = Netlist(name=spec.name)
    for i in range(n):
        netlist.add_cell(f"c{i}", float(widths[i]), float(height))

    # --- virtual home coordinates for locality ------------------------
    side = int(math.ceil(math.sqrt(n)))
    home_x = np.empty(n, dtype=np.float64)
    home_y = np.empty(n, dtype=np.float64)
    perm = rng.permutation(n)
    for rank, cid in enumerate(perm):
        home_x[cid] = rank % side
        home_y[cid] = rank // side

    # --- nets ----------------------------------------------------------
    num_nets = max(1, int(round(spec.nets_per_cell * n)))
    degrees = _sample_discrete(rng, spec.degree_weights, num_nets
                               ).astype(int)
    degrees = np.minimum(degrees, n)  # cannot exceed cell count
    drivers = rng.integers(0, n, size=num_nets)
    activities = rng.uniform(spec.activity_range[0],
                             spec.activity_range[1], size=num_nets)
    decay = max(1.0, spec.locality * side)

    # invert the home assignment: virtual grid slot -> occupying cell
    slot_table = np.full(side * side, -1, dtype=np.int64)
    slots = home_y.astype(np.int64) * side + home_x.astype(np.int64)
    slot_table[slots] = np.arange(n, dtype=np.int64)

    for i in range(num_nets):
        driver = int(drivers[i])
        degree = int(degrees[i])
        sinks = _pick_sinks(rng, driver, degree - 1, n, side,
                            home_x, home_y, decay, spec.global_fraction,
                            slot_table)
        pins = [(driver, PinRole.DRIVER)]
        pins.extend((s, PinRole.SINK) for s in sinks)
        netlist.add_net(f"n{i}", pins, activity=float(activities[i]))

    netlist.validate()
    return netlist


def _pick_sinks(rng: np.random.Generator, driver: int, count: int, n: int,
                side: int, home_x: FloatArray, home_y: FloatArray,
                decay: float, global_fraction: float,
                slot_table: IntArray) -> List[int]:
    """Pick ``count`` distinct sink cells around a driver's home location.

    Sinks are sampled at exponentially-decaying grid distance from the
    driver, with a ``global_fraction`` chance of being uniform over the
    whole grid.  Candidates are mapped back to cells by rounding the
    sampled coordinate to the nearest occupied grid point.
    """
    chosen: Set[int] = set()
    dx0 = float(home_x[driver])
    dy0 = float(home_y[driver])
    attempts = 0
    max_attempts = 40 * (count + 1)
    while len(chosen) < count and attempts < max_attempts:
        attempts += 1
        if rng.random() < global_fraction:
            cand = int(rng.integers(0, n))
        else:
            r = rng.exponential(decay)
            theta = rng.uniform(0.0, 2.0 * math.pi)
            gx = int(round(dx0 + r * math.cos(theta)))
            gy = int(round(dy0 + r * math.sin(theta)))
            gx = min(max(gx, 0), side - 1)
            gy = min(max(gy, 0), side - 1)
            cand = int(slot_table[gy * side + gx])
            if cand < 0:  # unoccupied slot beyond the last cell
                cand = int(rng.integers(0, n))
        if cand != driver and cand not in chosen:
            chosen.add(cand)
    # fall back to uniform fills if locality sampling stalled
    while len(chosen) < count:
        cand = int(rng.integers(0, n))
        if cand != driver and cand not in chosen:
            chosen.add(cand)
    return sorted(chosen)
