"""Placement state: cell coordinates over a chip geometry."""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from repro.geometry.chip import ChipGeometry
from repro.netlist.netlist import Netlist


class Placement:
    """Coordinates of every cell of a netlist inside a 3D chip.

    Coordinates refer to *cell centres*: ``x``/``y`` in metres, ``z`` as
    integer layer indices.  The arrays are indexed by cell id and shared
    freely with the placer's inner loops.

    Attributes:
        netlist: the circuit being placed.
        chip: the placement volume.
        x, y: float arrays of cell-centre coordinates, metres.
        z: int array of layer indices.
    """

    def __init__(self, netlist: Netlist, chip: ChipGeometry,
                 x: Optional[np.ndarray] = None,
                 y: Optional[np.ndarray] = None,
                 z: Optional[np.ndarray] = None) -> None:
        self.netlist = netlist
        self.chip = chip
        n = netlist.num_cells
        self.x = np.array(x, dtype=float) if x is not None else np.zeros(n)
        self.y = np.array(y, dtype=float) if y is not None else np.zeros(n)
        self.z = np.array(z, dtype=np.int64) if z is not None \
            else np.zeros(n, dtype=np.int64)
        for arr, label in ((self.x, "x"), (self.y, "y"), (self.z, "z")):
            if arr.shape != (n,):
                raise ValueError(
                    f"{label} has shape {arr.shape}, expected ({n},)")
        self._apply_fixed()

    def _apply_fixed(self) -> None:
        for cell in self.netlist.cells:
            if cell.fixed:
                fx, fy, fz = cell.fixed_position
                self.x[cell.id] = fx
                self.y[cell.id] = fy
                self.z[cell.id] = fz

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def at_center(netlist: Netlist, chip: ChipGeometry) -> "Placement":
        """All movable cells at the centre of the chip.

        This is the starting point of global placement (Section 6 of the
        paper): "placing the cells at the center of the chip".
        """
        n = netlist.num_cells
        x = np.full(n, 0.5 * chip.width)
        y = np.full(n, 0.5 * chip.height)
        z = np.full(n, (chip.num_layers - 1) // 2, dtype=np.int64)
        return Placement(netlist, chip, x, y, z)

    @staticmethod
    def random(netlist: Netlist, chip: ChipGeometry,
               seed: int = 0) -> "Placement":
        """Uniformly random placement (useful for tests and baselines)."""
        rng = np.random.default_rng(seed)
        n = netlist.num_cells
        x = rng.uniform(0.0, chip.width, n)
        y = rng.uniform(0.0, chip.height, n)
        z = rng.integers(0, chip.num_layers, n)
        return Placement(netlist, chip, x, y, z)

    def copy(self) -> "Placement":
        """Deep copy of the coordinate arrays (netlist/chip are shared)."""
        return Placement(self.netlist, self.chip,
                         self.x.copy(), self.y.copy(), self.z.copy())

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def move(self, cell_id: int, x: float, y: float, z: int) -> None:
        """Move one cell; refuses to move fixed cells."""
        if self.netlist.cells[cell_id].fixed:
            raise ValueError(
                f"cell {self.netlist.cells[cell_id].name!r} is fixed")
        self.x[cell_id] = x
        self.y[cell_id] = y
        self.z[cell_id] = z

    def clamp_to_chip(self) -> None:
        """Clamp every movable cell centre inside the die, keeping the
        cell's own extent inside the outline where possible."""
        half_w = 0.5 * self.netlist.widths
        half_h = 0.5 * self.netlist.heights
        movable = np.array([c.movable for c in self.netlist.cells],
                           dtype=bool)
        lo_x = np.minimum(half_w, 0.5 * self.chip.width)
        lo_y = np.minimum(half_h, 0.5 * self.chip.height)
        self.x[movable] = np.clip(self.x[movable], lo_x[movable],
                                  self.chip.width - lo_x[movable])
        self.y[movable] = np.clip(self.y[movable], lo_y[movable],
                                  self.chip.height - lo_y[movable])
        self.z[movable] = np.clip(self.z[movable], 0,
                                  self.chip.num_layers - 1)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def position(self, cell_id: int) -> Tuple[float, float, int]:
        """``(x, y, layer)`` of one cell."""
        return (float(self.x[cell_id]), float(self.y[cell_id]),
                int(self.z[cell_id]))

    def layer_populations(self) -> np.ndarray:
        """Number of movable cells per layer, shape ``(num_layers,)``."""
        counts = np.zeros(self.chip.num_layers, dtype=np.int64)
        for cell in self.netlist.cells:
            if cell.movable:
                counts[int(self.z[cell.id])] += 1
        return counts

    def layer_areas(self) -> np.ndarray:
        """Movable cell area per layer, square metres."""
        areas = np.zeros(self.chip.num_layers, dtype=float)
        cell_areas = self.netlist.areas
        for cell in self.netlist.cells:
            if cell.movable:
                areas[int(self.z[cell.id])] += cell_areas[cell.id]
        return areas

    def iter_movable(self) -> Iterable[Tuple[int, float, float, int]]:
        """Yield ``(cell_id, x, y, layer)`` for every movable cell."""
        for cell in self.netlist.cells:
            if cell.movable:
                yield (cell.id, float(self.x[cell.id]),
                       float(self.y[cell.id]), int(self.z[cell.id]))
