"""JSON checkpointing of netlists and placements.

Bookshelf covers interchange with other tools; JSON checkpoints cover
round-tripping *everything* this library knows about a design —
including pin roles, switching activities and TRR flags that Bookshelf
cannot express — so an experiment can be paused, archived and resumed
bit-exactly.
"""

from __future__ import annotations

import json
from typing import Optional, Tuple

import numpy as np

from repro.geometry.chip import ChipGeometry
from repro.netlist.net import PinRole
from repro.netlist.netlist import Netlist
from repro.netlist.placement import Placement

FORMAT_VERSION = 1


def netlist_to_dict(netlist: Netlist) -> dict:
    """Serializable representation of a netlist."""
    return {
        "version": FORMAT_VERSION,
        "name": netlist.name,
        "cells": [
            {
                "name": c.name,
                "width": c.width,
                "height": c.height,
                "fixed": c.fixed,
                "fixed_position": (list(c.fixed_position)
                                   if c.fixed_position else None),
            }
            for c in netlist.cells
        ],
        "nets": [
            {
                "name": n.name,
                "pins": [[cid, role.value] for cid, role in n.pins],
                "activity": n.activity,
                "is_trr": n.is_trr,
            }
            for n in netlist.nets
        ],
    }


def netlist_from_dict(data: dict) -> Netlist:
    """Rebuild a netlist from :func:`netlist_to_dict` output."""
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported checkpoint version "
                         f"{data.get('version')!r}")
    netlist = Netlist(name=data["name"])
    for c in data["cells"]:
        pos = tuple(c["fixed_position"]) if c["fixed_position"] else None
        netlist.add_cell(c["name"], c["width"], c["height"],
                         fixed=c["fixed"], fixed_position=pos)
    for n in data["nets"]:
        pins = [(cid, PinRole(role)) for cid, role in n["pins"]]
        netlist.add_net(n["name"], pins, activity=n["activity"],
                        is_trr=n["is_trr"])
    netlist.validate()
    return netlist


def placement_to_dict(placement: Placement) -> dict:
    """Serializable representation of a placement (chip + coordinates)."""
    chip = placement.chip
    return {
        "version": FORMAT_VERSION,
        "chip": {
            "width": chip.width,
            "height": chip.height,
            "num_layers": chip.num_layers,
            "row_height": chip.row_height,
            "row_pitch": chip.row_pitch,
            "layer_thickness": chip.layer_thickness,
            "interlayer_thickness": chip.interlayer_thickness,
            "substrate_thickness": chip.substrate_thickness,
        },
        "x": placement.x.tolist(),
        "y": placement.y.tolist(),
        "z": placement.z.tolist(),
    }


def placement_from_dict(data: dict, netlist: Netlist) -> Placement:
    """Rebuild a placement over an existing netlist."""
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported checkpoint version "
                         f"{data.get('version')!r}")
    chip = ChipGeometry(**data["chip"])
    return Placement(netlist, chip,
                     x=np.array(data["x"]),
                     y=np.array(data["y"]),
                     z=np.array(data["z"], dtype=np.int64))


def save_checkpoint(path: str, netlist: Netlist,
                    placement: Optional[Placement] = None) -> None:
    """Write a JSON checkpoint of a design (and optionally its
    placement)."""
    payload = {"netlist": netlist_to_dict(netlist)}
    if placement is not None:
        payload["placement"] = placement_to_dict(placement)
    with open(path, "w") as f:
        json.dump(payload, f)


def load_checkpoint(path: str
                    ) -> Tuple["Netlist", Optional["Placement"]]:
    """Read a checkpoint; returns ``(netlist, placement_or_None)``."""
    with open(path) as f:
        payload = json.load(f)
    netlist = netlist_from_dict(payload["netlist"])
    placement = None
    if "placement" in payload:
        placement = placement_from_dict(payload["placement"], netlist)
    return netlist, placement
