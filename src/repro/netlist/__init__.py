"""Circuit netlists for 3D placement.

This subpackage provides:

- :class:`~repro.netlist.cell.Cell` and :class:`~repro.netlist.net.Net` —
  the standard cells and (hyper)nets of a circuit;
- :class:`~repro.netlist.netlist.Netlist` — the container tying them
  together with fast incidence lookups;
- :class:`~repro.netlist.placement.Placement` — cell coordinates over a
  :class:`~repro.geometry.chip.ChipGeometry`;
- :mod:`~repro.netlist.bookshelf` — reader/writer for the UCLA Bookshelf
  format used by the IBM-PLACE suite;
- :mod:`~repro.netlist.generator` — a Rent's-rule synthetic netlist
  generator (our offline stand-in for the IBM-PLACE circuits);
- :mod:`~repro.netlist.suite` — ibm01..ibm18 profiles from Table 1 of the
  paper, instantiated through the generator at any scale.
"""

from repro.netlist.cell import Cell
from repro.netlist.net import Net, PinRole
from repro.netlist.netlist import Netlist
from repro.netlist.placement import Placement
from repro.netlist.generator import GeneratorSpec, generate_netlist
from repro.netlist.suite import (
    BenchmarkProfile,
    SUITE_PROFILES,
    benchmark_names,
    load_benchmark,
)
from repro.netlist.pads import add_peripheral_pads
from repro.netlist.stats import NetlistSummary, rent_exponent, summarize
from repro.netlist.jsonio import load_checkpoint, save_checkpoint

__all__ = [
    "add_peripheral_pads",
    "NetlistSummary",
    "rent_exponent",
    "summarize",
    "load_checkpoint",
    "save_checkpoint",
    "Cell",
    "Net",
    "PinRole",
    "Netlist",
    "Placement",
    "GeneratorSpec",
    "generate_netlist",
    "BenchmarkProfile",
    "SUITE_PROFILES",
    "benchmark_names",
    "load_benchmark",
]
