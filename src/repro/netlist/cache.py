"""Content-keyed cache of loaded netlists.

``sweep`` dispatches one job per ``alpha_ILV`` point and the placement
service re-executes resubmitted requests — and every one of those jobs
used to re-parse or re-generate its circuit from scratch, the single
largest fixed cost of a job at full instance scale (~0.3 s for
ibm01@1.0, dwarfing the cache-hit path itself).  This cache stores the
*pristine* pickled bytes of each loaded netlist under a source key and
answers repeats with a fresh unpickled copy:

- **pristine**: the placer mutates netlists in place (TRR-net
  injection, fixed-position updates), so live objects cannot be shared
  between jobs; the bytes are captured before the first use and every
  copy starts clean.
- **source key**: the key describes where the netlist came from —
  generator parameters (:func:`benchmark_key`) or Bookshelf file
  identity including mtime/size (:func:`bookshelf_key`) — so an edited
  file on disk misses and re-parses, while a resubmission hits.

Each served copy carries ``content_key`` so downstream derived-data
caches (the signal CSR of :mod:`repro.netlist.csr`, the service's
netlist hash) can share work across copies without re-walking the
netlist — the same hash-triple machinery the PR-9 result cache keys
on.
"""

from __future__ import annotations

import os
import pickle
from collections import OrderedDict
from typing import Callable, Dict, Optional

from repro.netlist.netlist import Netlist

__all__ = ["NetlistCache", "benchmark_key", "bookshelf_key",
           "cached_netlist", "clear_netlist_cache",
           "netlist_cache_stats"]


def benchmark_key(name: str, scale: float, seed: int) -> str:
    """Source key for a generated suite / synthetic circuit."""
    return f"bench:{name}:{scale:g}:{seed}"


def bookshelf_key(prefix: str) -> str:
    """Source key for a Bookshelf circuit on disk.

    Includes each component file's size and mtime, so editing the
    files invalidates the key naturally.
    """
    parts = [f"bookshelf:{os.path.abspath(prefix)}"]
    for ext in (".nodes", ".nets", ".pl"):
        path = prefix + ext
        try:
            st = os.stat(path)
            parts.append(f"{ext}:{st.st_size}:{st.st_mtime_ns}")
        except FileNotFoundError:
            parts.append(f"{ext}:absent")
    return "|".join(parts)


class NetlistCache:
    """LRU store of pristine pickled netlists, keyed by source.

    Args:
        capacity: maximum cached circuits; the least recently used
            entry is evicted first.  Full-size suite circuits pickle
            to a few MB each, so the default keeps the cache tens of
            MB at worst.
    """

    def __init__(self, capacity: int = 6) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get_or_load(self, key: str,
                    loader: Callable[[], Netlist]) -> Netlist:
        """The netlist for ``key``, loading (and caching) on a miss.

        A hit returns a fresh unpickled copy — never a shared live
        object — with ``content_key`` set so derived-data caches can
        recognise equal content.  On a miss the loader's netlist is
        snapshotted to bytes *before* being returned, so later copies
        are unaffected by any mutation the caller performs.
        """
        blob = self._entries.get(key)
        if blob is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            netlist = pickle.loads(blob)
            assert isinstance(netlist, Netlist)
            return netlist
        self.misses += 1
        netlist = loader()
        netlist.content_key = key
        self._entries[key] = pickle.dumps(
            netlist, protocol=pickle.HIGHEST_PROTOCOL)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return netlist

    def stats(self) -> Dict[str, int]:
        """Counters and footprint: hits, misses, entries, bytes."""
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._entries),
                "bytes": sum(len(b) for b in self._entries.values())}

    def clear(self) -> None:
        """Drop every entry (counters keep running)."""
        self._entries.clear()


#: Process-wide cache instance the loaders below share.
_GLOBAL: Optional[NetlistCache] = None


def _global_cache() -> NetlistCache:
    global _GLOBAL
    if _GLOBAL is None:
        _GLOBAL = NetlistCache()
    return _GLOBAL


def cached_netlist(key: str, loader: Callable[[], Netlist]) -> Netlist:
    """Load through the process-wide netlist cache."""
    return _global_cache().get_or_load(key, loader)


def netlist_cache_stats() -> Dict[str, int]:
    """Stats of the process-wide cache."""
    return _global_cache().stats()


def clear_netlist_cache() -> None:
    """Reset the process-wide cache (tests)."""
    global _GLOBAL
    _GLOBAL = None
