"""The netlist container: cells, nets and incidence structure."""

from __future__ import annotations

from typing import (TYPE_CHECKING, Dict, Iterable, List, Optional,
                    Sequence, Tuple)

import numpy as np

from repro.analysis import FloatArray, IntArray
from repro.netlist.cell import Cell
from repro.netlist.net import Net, PinRole

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netlist.csr import SignalCSR


class Netlist:
    """A circuit: a set of cells connected by hypergraph nets.

    Cells and nets get dense integer ids in insertion order, so every
    per-cell or per-net quantity elsewhere in the library can live in a
    flat NumPy array indexed by id.

    Thermal-resistance-reduction (TRR) nets added by the placer are kept
    in the same net list, flagged ``is_trr``; all metrics and the power
    model skip them via :meth:`signal_nets`.
    """

    def __init__(self, name: str = "netlist") -> None:
        self.name = name
        self.cells: List[Cell] = []
        self.nets: List[Net] = []
        self._cell_by_name: Dict[str, int] = {}
        self._net_by_name: Dict[str, int] = {}
        # nets incident to each cell, built lazily
        self._cell_nets: Optional[List[List[int]]] = None
        self._arrays_dirty = True
        self._widths: Optional[FloatArray] = None
        self._heights: Optional[FloatArray] = None
        self._movable_ids: Optional[IntArray] = None
        # signal-structure caches (see repro.netlist.csr / .cache):
        # the CSR survives TRR-net injection — TRR nets are excluded
        # from the signal structure — but not cell or signal-net adds
        self._signal_csr: Optional["SignalCSR"] = None
        #: content-hash key set when this instance came out of the
        #: netlist cache; lets equal-content copies share derived CSR
        self.content_key: Optional[str] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_cell(self, name: str, width: float, height: float,
                 fixed: bool = False,
                 fixed_position: Optional[Tuple[float, float, int]] = None
                 ) -> Cell:
        """Create a cell and return it.

        Raises:
            ValueError: if the name is already taken.
        """
        if name in self._cell_by_name:
            raise ValueError(f"duplicate cell name {name!r}")
        cell = Cell(id=len(self.cells), name=name, width=width,
                    height=height, fixed=fixed,
                    fixed_position=fixed_position)
        self.cells.append(cell)
        self._cell_by_name[name] = cell.id
        self._invalidate()
        self._signal_csr = None
        self.content_key = None
        return cell

    def add_net(self, name: str,
                pins: Sequence[Tuple[int, PinRole]],
                activity: float = 0.2,
                is_trr: bool = False) -> Net:
        """Create a net over existing cells and return it.

        Args:
            name: net name, unique within the netlist.
            pins: ``(cell_id, role)`` pairs; at least one pin.
            activity: switching activity ``a_i``.
            is_trr: marks virtual thermal-resistance-reduction nets.

        Raises:
            ValueError: on duplicate names, empty pin lists or bad ids.
        """
        if name in self._net_by_name:
            raise ValueError(f"duplicate net name {name!r}")
        if not pins:
            raise ValueError(f"net {name!r} has no pins")
        for cid, _ in pins:
            if not 0 <= cid < len(self.cells):
                raise ValueError(f"net {name!r}: unknown cell id {cid}")
        net = Net(id=len(self.nets), name=name, pins=list(pins),
                  activity=activity, is_trr=is_trr)
        self.nets.append(net)
        self._net_by_name[name] = net.id
        self._invalidate()
        if not is_trr:
            # TRR nets are excluded from the signal CSR, so injecting
            # them leaves the derived structure (and content key) valid
            self._signal_csr = None
            self.content_key = None
        return net

    def _invalidate(self) -> None:
        self._cell_nets = None
        self._arrays_dirty = True
        self._movable_ids = None

    def __getstate__(self) -> Dict[str, object]:
        # the signal CSR is derived data: cheap to rebuild, shareable
        # through the content-keyed store, and dead weight in a pickle
        state = self.__dict__.copy()
        state["_signal_csr"] = None
        return state

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def cell(self, name: str) -> Cell:
        """Cell by name."""
        return self.cells[self._cell_by_name[name]]

    def net(self, name: str) -> Net:
        """Net by name."""
        return self.nets[self._net_by_name[name]]

    @property
    def num_cells(self) -> int:
        """Number of cells (movable + fixed)."""
        return len(self.cells)

    @property
    def num_nets(self) -> int:
        """Number of nets (signal + TRR)."""
        return len(self.nets)

    @property
    def num_movable(self) -> int:
        """Number of movable (non-fixed) cells."""
        return sum(1 for c in self.cells if c.movable)

    def movable_cells(self) -> List[Cell]:
        """All movable cells."""
        return [c for c in self.cells if c.movable]

    @property
    def movable_ids(self) -> IntArray:
        """Ids of movable cells as an int64 array, cached until the
        netlist changes.  Treat as read-only."""
        ids = self._movable_ids
        if ids is None:
            ids = np.fromiter((c.id for c in self.cells if c.movable),
                              dtype=np.int64)
            self._movable_ids = ids
        return ids

    def fixed_cells(self) -> List[Cell]:
        """All fixed cells (terminals / pads)."""
        return [c for c in self.cells if c.fixed]

    def signal_nets(self) -> List[Net]:
        """All real (non-TRR) nets."""
        return [n for n in self.nets if not n.is_trr]

    def trr_nets(self) -> List[Net]:
        """All virtual thermal-resistance-reduction nets."""
        return [n for n in self.nets if n.is_trr]

    def nets_of_cell(self, cell_id: int) -> List[int]:
        """Ids of nets incident to a cell."""
        if self._cell_nets is None:
            self._build_incidence()
        assert self._cell_nets is not None
        return self._cell_nets[cell_id]

    def driven_nets_of_cell(self, cell_id: int) -> List[int]:
        """Ids of non-TRR nets the cell drives (has a DRIVER pin on)."""
        out: List[int] = []
        for nid in self.nets_of_cell(cell_id):
            net = self.nets[nid]
            if net.is_trr:
                continue
            if any(cid == cell_id and role is PinRole.DRIVER
                   for cid, role in net.pins):
                out.append(nid)
        return out

    def _build_incidence(self) -> None:
        incidence: List[List[int]] = [[] for _ in range(len(self.cells))]
        for net in self.nets:
            for cid in net.unique_cell_ids:
                incidence[cid].append(net.id)
        self._cell_nets = incidence

    # ------------------------------------------------------------------
    # bulk attribute arrays
    # ------------------------------------------------------------------
    def _refresh_arrays(self) -> None:
        if not self._arrays_dirty:
            return
        self._widths = np.array([c.width for c in self.cells],
                                dtype=np.float64)
        self._heights = np.array([c.height for c in self.cells],
                                 dtype=np.float64)
        self._arrays_dirty = False

    @property
    def widths(self) -> FloatArray:
        """Cell widths (metres) indexed by cell id."""
        self._refresh_arrays()
        assert self._widths is not None
        return self._widths

    @property
    def heights(self) -> FloatArray:
        """Cell heights (metres) indexed by cell id."""
        self._refresh_arrays()
        assert self._heights is not None
        return self._heights

    @property
    def areas(self) -> FloatArray:
        """Cell areas (square metres) indexed by cell id."""
        return self.widths * self.heights

    @property
    def total_cell_area(self) -> float:
        """Total area of the *movable* cells, square metres."""
        movable = np.array([c.movable for c in self.cells], dtype=bool)
        return float(self.areas[movable].sum()) if len(self.cells) else 0.0

    @property
    def average_cell_width(self) -> float:
        """Mean movable-cell width, metres."""
        widths = [c.width for c in self.cells if c.movable]
        if not widths:
            raise ValueError("netlist has no movable cells")
        return float(np.mean(widths))

    @property
    def average_cell_height(self) -> float:
        """Mean movable-cell height, metres."""
        heights = [c.height for c in self.cells if c.movable]
        if not heights:
            raise ValueError("netlist has no movable cells")
        return float(np.mean(heights))

    # ------------------------------------------------------------------
    # statistics & validation
    # ------------------------------------------------------------------
    def degree_histogram(self) -> Dict[int, int]:
        """Histogram of signal-net degrees (pin counts)."""
        hist: Dict[int, int] = {}
        for net in self.signal_nets():
            hist[net.degree] = hist.get(net.degree, 0) + 1
        return hist

    def num_pins(self) -> int:
        """Total pin count over signal nets."""
        return sum(net.degree for net in self.signal_nets())

    def validate(self) -> None:
        """Consistency checks; raises ``ValueError`` on violation.

        Checks that ids are dense, names map back correctly, all pins
        reference existing cells, and every non-TRR net with pins has at
        most reasonable structure (>= 1 pin; single-pin nets are tolerated
        because benchmark formats contain them, but they carry no cost).
        """
        for i, cell in enumerate(self.cells):
            if cell.id != i:
                raise ValueError(f"cell id {cell.id} at position {i}")
            if self._cell_by_name.get(cell.name) != i:
                raise ValueError(f"broken name index for cell {cell.name!r}")
        for i, net in enumerate(self.nets):
            if net.id != i:
                raise ValueError(f"net id {net.id} at position {i}")
            if self._net_by_name.get(net.name) != i:
                raise ValueError(f"broken name index for net {net.name!r}")
            if not net.pins:
                raise ValueError(f"net {net.name!r} has no pins")
            for cid, _ in net.pins:
                if not 0 <= cid < len(self.cells):
                    raise ValueError(
                        f"net {net.name!r} references unknown cell {cid}")
            if net.is_trr and net.degree != 1:
                raise ValueError(
                    f"TRR net {net.name!r} must have exactly one real pin")
