"""Figure 7: the WL-vs-ILV tradeoff curve degrades as the thermal
coefficient grows.

The paper shows the ibm01 tradeoff curve moving right/up (longer
wirelengths, more vias at a matched via coefficient) as alpha_TEMP
increases: thermal placement spends wirelength and vias to buy
temperature.  We reproduce three curves and check the aggregate cost is
visible at the strongest thermal setting.
"""

from common import SCALE, SeriesWriter, run_placement
from repro import PlacementConfig

ALPHA_ILV_CURVE = [2e-6, 1e-5, 8e-5, 6e-4]
ALPHA_TEMPS = [0.0, 4.1e-5, 6.4e-4]


def run_fig7():
    writer = SeriesWriter("fig7_thermal_tradeoff")
    writer.row(f"Figure 7 reproduction (ibm01, scale {SCALE})")
    writer.row(f"{'alpha_TEMP':>10} {'alpha_ILV':>10} {'WL (m)':>12} "
               f"{'ILVs':>7}")
    totals = {}
    for at in ALPHA_TEMPS:
        wl_sum = 0.0
        ilv_sum = 0
        for ai in ALPHA_ILV_CURVE:
            config = PlacementConfig(alpha_ilv=ai, alpha_temp=at,
                                     num_layers=4, seed=0)
            report = run_placement("ibm01", config, thermal=False)
            wl_sum += report.wirelength
            ilv_sum += report.ilv
            writer.row(f"{at:>10.1e} {ai:>10.1e} "
                       f"{report.wirelength:>12.5e} {report.ilv:>7}")
        totals[at] = (wl_sum, ilv_sum)

    writer.row("")
    base_wl, base_ilv = totals[0.0]
    for at in ALPHA_TEMPS:
        wl, ilv = totals[at]
        writer.row(f"alpha_TEMP {at:.1e}: curve-summed WL "
                   f"{(wl / base_wl - 1) * 100:+.1f}%, ILVs "
                   f"{(ilv / base_ilv - 1) * 100:+.1f}% vs thermal-off")

    strongest = totals[ALPHA_TEMPS[-1]]
    # the curve must shift: WL and/or vias grow under strong thermal
    assert strongest[0] > 0.98 * base_wl
    assert strongest[0] + 1e-9 > base_wl or strongest[1] > base_ilv
    writer.save()
    return True


def test_fig7_thermal_tradeoff(benchmark):
    assert benchmark.pedantic(run_fig7, rounds=1, iterations=1)
