"""Figure 8: average-temperature reduction vs alpha_TEMP for 1-8 layers.

The paper sweeps the thermal coefficient at alpha_ILV = 1e-5 for chips
with 1, 2, 4, 6 and 8 layers and plots the percent reduction in average
temperature relative to the thermal-off placement of the same stack.
Reductions grow with the layer count (taller stacks have more vertical
resistance gradient to exploit) but the method also helps 2D (1-layer)
circuits.  We reproduce the family and check the best reduction of the
tall stacks beats the best of the single layer.
"""

import numpy as np

from common import NUM_SEEDS, SCALE, SeriesWriter, pct, run_placement
from repro import PlacementConfig

LAYER_COUNTS = [1, 2, 4, 8]
ALPHA_TEMPS = [1e-5, 4.1e-5, 1.6e-4]
#: single-seed thermal deltas on small instances are noisy, so this
#: figure always averages at least two seeds
SEEDS = max(2, NUM_SEEDS)


def _avg_temp(layers: int, alpha_temp: float) -> float:
    temps = []
    for seed in range(SEEDS):
        report = run_placement("ibm01", PlacementConfig(
            alpha_ilv=1e-5, alpha_temp=alpha_temp, num_layers=layers,
            seed=seed), seed=seed)
        temps.append(report.average_temperature)
    return float(np.mean(temps))


def run_fig8():
    writer = SeriesWriter("fig8_temp_reduction_layers")
    writer.row(f"Figure 8 reproduction (ibm01, scale {SCALE}, "
               f"alpha_ILV = 1e-5, {SEEDS} seeds)")
    writer.row(f"{'layers':>6} {'alpha_TEMP':>10} {'avgT (K)':>9} "
               f"{'reduction':>10}")
    best_reduction = {}
    for layers in LAYER_COUNTS:
        base = _avg_temp(layers, 0.0)
        writer.row(f"{layers:>6} {'off':>10} {base:>9.3f} {'--':>10}")
        best = 0.0
        for at in ALPHA_TEMPS:
            temp = _avg_temp(layers, at)
            reduction = -pct(temp, base)
            best = max(best, reduction)
            writer.row(f"{layers:>6} {at:>10.1e} {temp:>9.3f} "
                       f"{reduction:>+9.1f}%")
        best_reduction[layers] = best

    writer.row("")
    for layers in LAYER_COUNTS:
        writer.row(f"best reduction @ {layers} layers: "
                   f"{best_reduction[layers]:+.1f}% "
                   f"(paper: grows toward ~33% at 8 layers)")
    # robust shape check: the thermal mechanisms find a reduction for
    # at least one stack height (single-seed small instances are noisy;
    # raise REPRO_SEEDS / REPRO_SCALE for tighter comparisons)
    assert max(best_reduction.values()) > 0.0
    writer.save()
    return True


def test_fig8_temp_reduction_layers(benchmark):
    assert benchmark.pedantic(run_fig8, rounds=1, iterations=1)
