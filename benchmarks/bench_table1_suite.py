"""Table 1: the benchmark suite (cells and total areas).

Regenerates the synthetic equivalents of all 18 IBM-PLACE circuits and
prints their statistics next to the published values.  At full scale
(``REPRO_FULL=1``) the cell counts and areas match Table 1 exactly by
construction; at reduced scale both shrink proportionally so the cell
size distribution is preserved.
"""

from common import SCALE, SeriesWriter
from repro.netlist.suite import SUITE_PROFILES, load_benchmark


def run_table1():
    writer = SeriesWriter("table1_suite")
    writer.row(f"Table 1 reproduction at scale {SCALE}")
    writer.row(f"{'name':<8} {'cells(paper)':>12} {'cells(ours)':>12} "
               f"{'area mm2(paper)':>16} {'area mm2(ours)':>15} "
               f"{'nets':>8} {'pins':>9}")
    for name, profile in SUITE_PROFILES.items():
        netlist = load_benchmark(name, scale=SCALE)
        area_mm2 = netlist.total_cell_area * 1e6
        writer.row(f"{name:<8} {profile.cells:>12} "
                   f"{netlist.num_cells:>12} "
                   f"{profile.area_mm2:>16.3f} {area_mm2:>15.5f} "
                   f"{netlist.num_nets:>8} {netlist.num_pins():>9}")
        expected = max(64, round(profile.cells * SCALE))
        assert netlist.num_cells == expected
        expected_area = profile.area_m2 * netlist.num_cells / profile.cells
        assert abs(netlist.total_cell_area - expected_area) \
            <= 1e-9 * expected_area
    writer.save()
    return True


def test_table1_suite(benchmark):
    assert benchmark.pedantic(run_table1, rounds=1, iterations=1)
