"""Extension study: partitioning vs the force-directed paradigm (§1).

The paper's introduction argues that partitioning-based placement suits
3D ICs better than quadratic/force-directed methods, partly because 3D
designs may lack the encompassing pad arrangement those methods lean
on.  This study places the same padless circuits with both paradigms —
the recursive-bisection flow and a clique-model quadratic placer with
rank spreading — sharing the objective and legalizer, and reports the
gap.
"""

from common import SCALE, SeriesWriter, suite_subset
from repro import Placer3D, PlacementConfig, load_benchmark
from repro.core.quadratic import QuadraticPlacer


def run_forcedirected():
    writer = SeriesWriter("ext_forcedirected")
    writer.row(f"Extension: bisection vs quadratic placement "
               f"(padless, scale {SCALE})")
    writer.row(f"{'circuit':<10} {'bisection obj':>14} "
               f"{'quadratic obj':>14} {'gap':>7}")
    config = PlacementConfig(alpha_ilv=1e-5, alpha_temp=0.0,
                             num_layers=4, seed=0)
    wins = 0
    total = 0
    for circuit in suite_subset()[:3]:
        netlist = load_benchmark(circuit, scale=SCALE)
        bis = Placer3D(netlist, config).run()
        netlist = load_benchmark(circuit, scale=SCALE)
        quad = QuadraticPlacer(netlist, config).run()
        gap = (quad.objective / bis.objective - 1) * 100
        wins += bis.objective < quad.objective
        total += 1
        writer.row(f"{circuit:<10} {bis.objective:>14.5e} "
                   f"{quad.objective:>14.5e} {gap:>+6.1f}%")
    writer.row("")
    writer.row(f"bisection wins {wins}/{total} padless circuits "
               f"(the paper's Section 1 motivation)")
    assert wins >= total - 1  # allow one noisy upset
    writer.save()
    return True


def test_ext_forcedirected(benchmark):
    assert benchmark.pedantic(run_forcedirected, rounds=1, iterations=1)
