"""Ablation: row-aware cell shifting vs FastPlace-style shifting.

Section 4.1 of the paper claims two advantages of its row-aware cell
shifting over FastPlace's adjacent-bin formulation:

1. FastPlace's boundaries can cross over (new bin boundaries computed
   from only two adjacent densities can get out of order), scrambling
   relative cell order;
2. FastPlace keeps spreading nearly-legal regions even when that helps
   no congested bin.

This ablation implements the adjacent-bin update the way FastPlace
defines it and compares both on synthetic density rows: cross-over
frequency and the amount of pointless movement in congestion-free rows.
"""

import numpy as np

from common import SeriesWriter
from repro.core.cellshift import shifted_widths


def fastplace_boundaries(densities: np.ndarray, width: float
                         ) -> np.ndarray:
    """FastPlace-style new boundaries from adjacent densities only.

    Each internal boundary moves according to the densities of the two
    bins it separates: ``B'_i = (d_{i+1}(B_i - W) + d_i(B_i + W)) /
    (d_i + d_{i+1})`` — the averaging update of Viswanathan & Chu
    (ISPD'04), which looks only at the two neighbours.
    """
    n = len(densities)
    bounds = np.arange(n + 1, dtype=float) * width
    new = bounds.copy()
    for i in range(1, n):
        d_left = densities[i - 1]
        d_right = densities[i]
        denom = d_left + d_right
        if denom <= 0:
            continue
        new[i] = (d_right * (bounds[i] - width)
                  + d_left * (bounds[i] + width)) / denom
    return new


def run_ablation():
    rng = np.random.default_rng(7)
    writer = SeriesWriter("ablation_cellshift")
    writer.row("Cell-shifting ablation: ours (row-aware) vs "
               "FastPlace-style (adjacent bins)")

    crossovers_fp = 0
    crossovers_ours = 0
    idle_motion_fp = 0.0
    idle_motion_ours = 0.0
    idle_rows = 0
    trials = 400
    for _ in range(trials):
        n = int(rng.integers(4, 20))
        densities = rng.uniform(0.0, 3.0, n)
        if rng.random() < 0.3:
            densities = np.minimum(densities, 1.0)  # congestion-free row
        fp = fastplace_boundaries(densities, 1.0)
        ours_widths = shifted_widths(densities, 1.0, a_lower=0.5,
                                     a_upper=1.0, b=1.0)
        ours = np.concatenate(([0.0], np.cumsum(ours_widths)))
        if np.any(np.diff(fp) <= 0):
            crossovers_fp += 1
        if np.any(np.diff(ours) <= 0):
            crossovers_ours += 1
        if densities.max() <= 1.0:
            idle_rows += 1
            uniform = np.arange(n + 1, dtype=float)
            idle_motion_fp += float(np.abs(fp - uniform).sum())
            idle_motion_ours += float(np.abs(ours - uniform).sum())

    writer.row(f"rows with boundary cross-over: "
               f"FastPlace-style {crossovers_fp}/{trials}, "
               f"ours {crossovers_ours}/{trials}")
    writer.row(f"boundary motion in congestion-free rows "
               f"(should be zero): FastPlace-style "
               f"{idle_motion_fp / max(idle_rows, 1):.3f} bins/row, "
               f"ours {idle_motion_ours / max(idle_rows, 1):.3f}")

    assert crossovers_ours == 0, "row-aware shifting crossed boundaries"
    assert crossovers_fp > 0, \
        "the FastPlace failure mode did not reproduce"
    assert idle_motion_ours == 0.0
    assert idle_motion_fp > 0.0
    writer.save()
    return True


def test_ablation_cellshift(benchmark):
    assert benchmark.pedantic(run_ablation, rounds=1, iterations=1)
