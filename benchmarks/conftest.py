"""Pytest configuration for the benchmark harness.

Makes ``benchmarks/common.py`` importable and keeps the experiment
output visible: these benchmarks are figure/table regenerators, so their
printed series are the point.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
