"""Figure 6: ibm01 average temperature over the (alpha_TEMP, alpha_ILV)
coefficient plane.

The paper's surface shows two effects: temperature falls as the thermal
coefficient grows, and temperature rises as the via coefficient
*shrinks* (cheap vias -> many vias -> more switched capacitance -> more
power).  We reproduce a coarse grid of that surface and check the second
effect, which is the robust one (the first is checked as a weak trend —
see EXPERIMENTS.md on thermal magnitudes).
"""

import numpy as np

from common import SCALE, SeriesWriter, run_placement
from repro import PlacementConfig

ALPHA_ILV_GRID = [2e-7, 2e-6, 1e-5, 1.6e-4]
ALPHA_TEMP_GRID = [0.0, 1e-5, 4.1e-5, 1.6e-4]


def run_fig6():
    writer = SeriesWriter("fig6_temperature_grid")
    writer.row(f"Figure 6 reproduction (ibm01, scale {SCALE}): average "
               f"temperature (K above ambient)")
    header = " ".join(f"{a:>9.1e}" for a in ALPHA_ILV_GRID)
    corner = "aTEMP / aILV"
    writer.row(f"{corner:>12} {header}")
    grid = np.zeros((len(ALPHA_TEMP_GRID), len(ALPHA_ILV_GRID)))
    for i, at in enumerate(ALPHA_TEMP_GRID):
        cells = []
        for j, ai in enumerate(ALPHA_ILV_GRID):
            config = PlacementConfig(alpha_ilv=ai, alpha_temp=at,
                                     num_layers=4, seed=0)
            report = run_placement("ibm01", config)
            grid[i, j] = report.average_temperature
            cells.append(f"{grid[i, j]:>9.3f}")
        writer.row(f"{at:>12.1e} " + " ".join(cells))

    # cheap vias must run hotter than expensive vias (row-wise trend)
    assert grid[0, 0] > grid[0, -1], \
        "temperature did not increase as alpha_ILV decreased"
    writer.save()
    return True


def test_fig6_temperature_grid(benchmark):
    assert benchmark.pedantic(run_fig6, rounds=1, iterations=1)
