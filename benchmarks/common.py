"""Shared infrastructure for the figure/table reproduction benchmarks.

Every module in this directory regenerates one table or figure of the
paper's evaluation (Section 7).  Because the placer is pure Python and
the paper's circuits are 12k-210k cells, the benchmarks default to
scaled-down synthetic instances (DESIGN.md substitution #1) and a subset
of the 18-circuit suite; the *shape* of every curve is what is being
reproduced, not absolute magnitudes.

Environment knobs:
    REPRO_SCALE     fraction of published cell counts (default 0.025)
    REPRO_CIRCUITS  how many suite circuits to average over (default 4)
    REPRO_SEEDS     seeds per configuration for averaging (default 1)
    REPRO_FULL=1    full-size circuits, all 18, 3 seeds (very slow)

Each benchmark prints the same rows/series the paper reports and writes
them to ``benchmarks/results/<name>.txt``.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional

from repro import (
    Placer3D,
    PlacementConfig,
    PlacementReport,
    evaluate_placement,
    load_benchmark,
)
from repro.netlist.suite import benchmark_names

FULL = os.environ.get("REPRO_FULL", "") == "1"
SCALE = 1.0 if FULL else float(os.environ.get("REPRO_SCALE", "0.025"))
NUM_CIRCUITS = 18 if FULL else int(os.environ.get("REPRO_CIRCUITS", "4"))
NUM_SEEDS = 3 if FULL else int(os.environ.get("REPRO_SEEDS", "1"))

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: The alpha_ILV sweep of Figures 3-4 (paper: 5e-9 .. 5.2e-3, 11 points;
#: we default to 8 spanning the same decades, with extra resolution at
#: the knee where the "46% fewer vias within 2% WL" headline lives).
ALPHA_ILV_SWEEP = [5e-9, 5e-8, 2e-7, 6.4e-7, 2e-6, 1e-5, 1.6e-4, 5.2e-3]

#: The alpha_TEMP sweep of Figures 6, 8, 9 (paper: 1e-8 .. 5.2e-3).
ALPHA_TEMP_SWEEP = [0.0, 2.6e-6, 1e-5, 4.1e-5, 1.6e-4]


def suite_subset() -> List[str]:
    """The circuits used for suite-averaged experiments."""
    return benchmark_names()[:NUM_CIRCUITS]


def run_placement(circuit: str, config: PlacementConfig,
                  scale: Optional[float] = None, seed: int = 0,
                  thermal: bool = True) -> PlacementReport:
    """Place one circuit and evaluate it.

    The netlist is regenerated per call (placement mutates it by adding
    TRR nets), with the seed decorrelating both generation and placement.
    """
    netlist = load_benchmark(circuit, scale=scale or SCALE, seed=seed)
    result = Placer3D(netlist, config).run()
    return evaluate_placement(result.placement, config.tech,
                              thermal=thermal,
                              runtime_seconds=result.runtime_seconds,
                              stage_seconds=result.stage_seconds)


def averaged(circuits: List[str], make_config: Callable[[int],
             PlacementConfig], thermal: bool = True,
             scale: Optional[float] = None) -> Dict[str, float]:
    """Average a configuration's metrics over circuits x seeds.

    Args:
        circuits: suite circuit names.
        make_config: seed -> config (so per-seed RNG streams differ).

    Returns:
        Mean wirelength / ilv / density / power / temperatures / runtime.
    """
    acc = {"wirelength": 0.0, "ilv": 0.0, "ilv_density": 0.0,
           "total_power": 0.0, "average_temperature": 0.0,
           "max_temperature": 0.0, "runtime_seconds": 0.0}
    n = 0
    for circuit in circuits:
        for seed in range(NUM_SEEDS):
            report = run_placement(circuit, make_config(seed),
                                   scale=scale, seed=seed,
                                   thermal=thermal)
            for key in acc:
                acc[key] += getattr(report, key)
            n += 1
    return {key: value / n for key, value in acc.items()}


class SeriesWriter:
    """Collects printed rows and mirrors them to a results file."""

    def __init__(self, name: str):
        self.name = name
        self.lines: List[str] = []

    def row(self, text: str) -> None:
        print(text)
        self.lines.append(text)

    def save(self) -> str:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{self.name}.txt")
        with open(path, "w") as f:
            f.write("\n".join(self.lines) + "\n")
        return path


def pct(new: float, base: float) -> float:
    """Percent change, guarded against a zero baseline."""
    if base == 0:
        return 0.0
    return (new / base - 1.0) * 100.0
