"""Table 2: experiment parameters.

Prints the parameter set the placer runs with next to the published
Table 2 values and asserts they agree.
"""

import pytest

from common import SeriesWriter
from repro import PlacementConfig
from repro.technology import TechnologyConfig

#: (label, published value, getter)
TABLE2 = [
    ("technode (nm)", 100.0, lambda t: t.technode * 1e9),
    ("number of layers", 4, lambda t: PlacementConfig().num_layers),
    ("bulk substrate thick. (um)", 500.0,
     lambda t: t.substrate_thickness * 1e6),
    ("layer thickness (um)", 5.7, lambda t: t.layer_thickness * 1e6),
    ("interlayer thickness (um)", 0.7,
     lambda t: t.interlayer_thickness * 1e6),
    ("effective thermal cond. (W/mK)", 10.2,
     lambda t: t.thermal_conductivity),
    ("whitespace (%)", 5.0, lambda t: t.whitespace * 100),
    ("inter-row/row space (%)", 25.0, lambda t: t.inter_row_space * 100),
    ("lateral interconnect cap (pF/m)", 73.8,
     lambda t: t.cap_per_wirelength * 1e12),
    ("interlayer via cap (pF/m)", 1480.0,
     lambda t: t.cap_per_via_length * 1e12),
    ("input pin capacitance (fF)", 0.350,
     lambda t: t.input_pin_cap * 1e15),
    ("ambient temperature (C)", 0.0, lambda t: t.ambient_temperature),
    ("conv. coef. of heat sink (W/m2K)", 1e6,
     lambda t: t.heat_sink_convection),
]


def run_table2():
    tech = TechnologyConfig()
    writer = SeriesWriter("table2_params")
    writer.row(f"{'parameter':<36} {'paper':>12} {'ours':>12}")
    for label, published, getter in TABLE2:
        ours = getter(tech)
        writer.row(f"{label:<36} {published:>12g} {ours:>12g}")
        assert ours == pytest.approx(published, rel=1e-9)
    writer.save()
    return True


def test_table2_params(benchmark):
    assert benchmark.pedantic(run_table2, rounds=1, iterations=1)
