"""Ablation: thermal net weighting vs TRR nets vs both (Section 3).

The paper argues both mechanisms are needed: net weighting reduces the
power of nets driven from hot spots (attacking the source), TRR nets
move hot cells toward the heat sink (attacking the path).  This ablation
places with each mechanism alone and with both, and reports what each
buys and costs.
"""

from common import SCALE, SeriesWriter, pct, run_placement
from repro import PlacementConfig

VARIANTS = {
    "thermal off": dict(alpha_temp=0.0),
    "net weights only": dict(alpha_temp=1e-5, use_trr_nets=False,
                             use_thermal_net_weights=True),
    "TRR nets only": dict(alpha_temp=1e-5, use_trr_nets=True,
                          use_thermal_net_weights=False),
    "both": dict(alpha_temp=1e-5, use_trr_nets=True,
                 use_thermal_net_weights=True),
}


def run_ablation():
    writer = SeriesWriter("ablation_thermal_components")
    writer.row(f"Thermal-mechanism ablation (ibm01, scale {SCALE}, "
               f"alpha_ILV = 1e-5, alpha_TEMP = 1e-5)")
    writer.row(f"{'variant':<18} {'WL':>8} {'ILV':>8} {'power':>8} "
               f"{'avgT':>8} {'maxT':>8}")

    results = {}
    for label, overrides in VARIANTS.items():
        config = PlacementConfig(alpha_ilv=1e-5, num_layers=4, seed=0,
                                 **overrides)
        results[label] = run_placement("ibm01", config)

    base = results["thermal off"]
    for label, r in results.items():
        writer.row(
            f"{label:<18} "
            f"{pct(r.wirelength, base.wirelength):>+7.1f}% "
            f"{pct(r.ilv, base.ilv):>+7.1f}% "
            f"{pct(r.total_power, base.total_power):>+7.1f}% "
            f"{pct(r.average_temperature, base.average_temperature):>+7.1f}% "
            f"{pct(r.max_temperature, base.max_temperature):>+7.1f}%")

    writer.row("")
    writer.row("expected shape: each mechanism alone helps less (or "
               "hurts); 'both' gives the best temperature per unit of "
               "WL/ILV cost (the paper's Section 3 argument)")
    writer.save()
    return True


def test_ablation_thermal_components(benchmark):
    assert benchmark.pedantic(run_ablation, rounds=1, iterations=1)
