"""Baseline comparison: recursive bisection vs simulated annealing vs
random.

The paper motivates a partitioning-based approach for 3D placement
(Section 1); this benchmark quantifies that choice against the two
reference placers built on the *same* objective, legalizer and metrics:
a random-start baseline and a classic range-limited annealer.  The
bisection placer must win on the objective at comparable runtime.
"""

from common import SCALE, SeriesWriter
from repro import Placer3D, PlacementConfig, load_benchmark
from repro.core.baseline import (
    AnnealingPlacer,
    AnnealingSchedule,
    random_baseline,
)


def run_comparison():
    writer = SeriesWriter("baseline_comparison")
    writer.row(f"Placer comparison (ibm01, scale {SCALE}, "
               f"alpha_ILV = 1e-5)")
    writer.row(f"{'placer':<22} {'objective':>12} {'WL (m)':>12} "
               f"{'ILVs':>7} {'time (s)':>9}")

    config = PlacementConfig(alpha_ilv=1e-5, alpha_temp=0.0,
                             num_layers=4, seed=0)

    results = {}
    netlist = load_benchmark("ibm01", scale=SCALE)
    results["random+legalize"] = random_baseline(netlist, config)
    netlist = load_benchmark("ibm01", scale=SCALE)
    results["simulated annealing"] = AnnealingPlacer(
        netlist, config, schedule=AnnealingSchedule(
            moves_per_cell=80, stages=24)).run()
    netlist = load_benchmark("ibm01", scale=SCALE)
    results["recursive bisection"] = Placer3D(netlist, config).run()

    for label, r in results.items():
        writer.row(f"{label:<22} {r.objective:>12.5e} "
                   f"{r.wirelength:>12.5e} {r.ilv:>7} "
                   f"{r.runtime_seconds:>9.1f}")

    writer.row("")
    bisection = results["recursive bisection"]
    annealed = results["simulated annealing"]
    rand = results["random+legalize"]
    advantage = (1 - bisection.objective / annealed.objective) * 100
    writer.row(f"bisection vs annealing objective: "
               f"{advantage:+.1f}% better")
    assert bisection.objective < annealed.objective < rand.objective
    writer.save()
    return True


def test_baseline_comparison(benchmark):
    assert benchmark.pedantic(run_comparison, rounds=1, iterations=1)
