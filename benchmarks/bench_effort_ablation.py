"""Section 7 effort knobs: quality vs runtime.

The paper reports two effort experiments: (a) more hMetis random starts
plus larger move/swap target regions improve the objective by 3.8% at
3.4x the runtime; (b) repeating the coarse+detailed legalization ten
times improves it by 7.7% at 65x.  We reproduce both knobs at reduced
intensity and check more effort never hurts quality much while costing
real time.
"""

from common import SCALE, SeriesWriter
from repro import Placer3D, PlacementConfig, load_benchmark

EFFORTS = {
    "default": dict(partition_starts=3, move_target_bins=27,
                    legalization_rounds=1),
    "more starts/regions": dict(partition_starts=8, move_target_bins=81,
                                legalization_rounds=1),
    "3x legalization": dict(partition_starts=3, move_target_bins=27,
                            legalization_rounds=3),
}


def run_effort():
    writer = SeriesWriter("effort_ablation")
    writer.row(f"Section 7 effort knobs (ibm01, scale {SCALE})")
    writer.row(f"{'setting':<22} {'objective':>12} {'vs default':>11} "
               f"{'time (s)':>9} {'time x':>7}")
    results = {}
    for label, knobs in EFFORTS.items():
        netlist = load_benchmark("ibm01", scale=SCALE)
        config = PlacementConfig(alpha_ilv=1e-5, alpha_temp=0.0,
                                 num_layers=4, seed=0, **knobs)
        results[label] = Placer3D(netlist, config).run(check=True)

    base = results["default"]
    for label, result in results.items():
        improvement = (1 - result.objective / base.objective) * 100
        factor = result.runtime_seconds / base.runtime_seconds
        writer.row(f"{label:<22} {result.objective:>12.5e} "
                   f"{improvement:>+10.1f}% {result.runtime_seconds:>9.1f} "
                   f"{factor:>6.1f}x")

    writer.row("")
    writer.row("paper: +3.8% quality at 3.4x (starts/regions), "
               "+7.7% at 65x (10x legalization)")
    # effort must cost time; quality should not regress badly
    assert results["more starts/regions"].runtime_seconds > \
        base.runtime_seconds
    for label, result in results.items():
        assert result.objective < 1.25 * base.objective
    writer.save()
    return True


def test_effort_ablation(benchmark):
    assert benchmark.pedantic(run_effort, rounds=1, iterations=1)
