"""Scaling benchmark for the vectorized placement kernels.

Unlike the figure/table reproductions, this benchmark gates the
*implementation*, not the science: it times the full placement pipeline
per stage across a ladder of instance sizes, plus the two kernel
micro-benchmarks the vectorization targeted —

- ``ObjectiveState.rebuild``: the CSR ``reduceat`` full recompute of
  every net's extremes, wirelength, and via counts;
- ``ThermalSolver.solve_powers``: repeated solves on a fixed geometry,
  which hit the cached sparse-LU factorization after the first call
  (the seed implementation ran a full ``spsolve`` per call).

It also gates the observability layer: each scale runs ``repeats``
back-to-back pairs — the default (no-op ambient) recorder immediately
followed by a live ``repro.obs.Recorder`` — and
``telemetry_overhead_pct`` is the *median of per-pair ratios*.
Minima are kept for the wall-clock speedup series, but the overhead
gate uses paired ratios: the difference of two best-of-N minima
estimates the noise floor, not the overhead (how the historical
numbers went negative), and pairing cancels machine drift that
block-sequential medians still pick up.  Negative readings clamp to
zero *at the emission point* — the headline JSON never claims
telemetry made runs faster; the raw median and the per-pair noise
band are kept alongside for forensics.  ``--check-overhead`` turns
the budget into an exit code.

``thermal_fidelity`` compares the exact finite-volume solve against
the calibrated closed-form surrogate in the move-loop path
(``SurrogateThermalModel.move_delta``) at scale 0.1, reports the
calibrated relative error, and places the same netlist under
``exact`` and ``adaptive`` fidelity to confirm the final objectives
are identical (the policy's trajectory-neutrality contract).

``service_cache`` times a cold placement against a cached
resubmission of the same job through ``repro.service``'s
content-addressed result cache (the dedup path of sweeps and repeated
``repro job submit``): its cold/hit latencies feed the perf ledger.

``--workers`` adds an execution-backend scaling row: the full pipeline
at workers 1/2/4 (scale 0.1) with a bit-identity check against the
serial run, plus the machine's ``available_cpus`` — the honest upper
bound on any measured speedup.  The rows carry the zero-copy dispatch
instrumentation (payload bytes per task vs the dense pickled-task
baseline) and gate the >= 10x reduction.

``--large`` adds the true-scale section: full-size ibm01 (scale 0.5
and 1.0) through the default pipeline and a 50k-cell synthetic
instance through the global (dispatch-heavy) stage, each recording
wall seconds, peak RSS, and dispatch bytes for the perf ledger; plus
a subprocess probe comparing the streaming and buffered Bookshelf
readers' parse-time RSS on full-size ibm01.

Results are written as machine-readable JSON so before/after runs can
be compared; ``--baseline`` merges a previous run into a single
``{"before": ..., "after": ..., "speedup": ...}`` document (the
repo-root ``BENCH_scaling.json`` is such a merged document).

Usage::

    PYTHONPATH=src python benchmarks/bench_scaling.py --json after.json
    # ... check out the baseline tree, run again into before.json ...
    PYTHONPATH=src python benchmarks/bench_scaling.py \
        --json BENCH_scaling.json --baseline before.json

Under pytest-benchmark it runs the default ladder and asserts nothing
beyond completion, like the other benchmarks here.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional

import numpy as np

from common import SeriesWriter
from repro import Placer3D, PlacementConfig, load_benchmark
from repro.obs import (Recorder, SamplingProfiler, Stopwatch,
                       peak_rss_bytes)

#: instance-size ladder (fractions of published ibm01 cell count)
SCALES = [0.025, 0.05, 0.1]
CIRCUIT = "ibm01"


def _best_of(fn, repeats: int = 5) -> float:
    """Minimum wall-clock of several calls (noise-robust statistic)."""
    best = float("inf")
    watch = Stopwatch()
    for _ in range(repeats):
        watch.restart()
        fn()
        best = min(best, watch.elapsed())
    return best


def bench_full_placement(scales: List[float],
                         repeats: int = 5) -> Dict[str, dict]:
    """Wall-clock and per-stage seconds of Placer3D per scale.

    Each scale runs ``repeats`` back-to-back *pairs*: the default path
    (private recorder, no ambient instrumentation) immediately
    followed by a fully instrumented run with a live ``Recorder``
    installed.  The minimum plain wall is kept as ``wall_seconds``
    (the noise-robust statistic the before/after speedup series
    compares), and the telemetry overhead is the *median of per-pair
    ratios*: pairing cancels slow machine drift that made
    block-sequential measurements (all plain runs, then all telemetry
    runs) read impossible negative overheads on shared machines, and
    the median discards pairs a scheduler hiccup landed in.  The
    netlist is regenerated between runs because placement mutates it
    (TRR nets).
    """
    out: Dict[str, dict] = {}
    watch = Stopwatch()
    for scale in scales:
        walls: List[float] = []
        telemetry_walls: List[float] = []
        profile_walls: List[float] = []
        result = None
        wall = float("inf")
        for _ in range(repeats):
            netlist = load_benchmark(CIRCUIT, scale=scale, seed=0)
            watch.restart()
            attempt = Placer3D(netlist, PlacementConfig()).run()
            elapsed = watch.elapsed()
            walls.append(elapsed)
            if elapsed < wall:
                wall, result = elapsed, attempt
            netlist = load_benchmark(CIRCUIT, scale=scale, seed=0)
            watch.restart()
            Placer3D(netlist, PlacementConfig(),
                     recorder=Recorder()).run()
            telemetry_walls.append(watch.elapsed())
            # third leg of the pair: full deep-observability stack
            # (resource tracking + sampling profiler at the default
            # rate), gated by --check-profile-overhead
            netlist = load_benchmark(CIRCUIT, scale=scale, seed=0)
            watch.restart()
            recorder = Recorder(track_resources=True)
            with SamplingProfiler(tracer=recorder.tracer):
                Placer3D(netlist, PlacementConfig(),
                         recorder=recorder).run()
            recorder.finish_resources()
            profile_walls.append(watch.elapsed())
        assert result is not None
        overhead = float(np.median(
            [t / p - 1.0 for p, t in zip(walls, telemetry_walls)]))
        profile_overhead = float(np.median(
            [t / p - 1.0 for p, t in zip(walls, profile_walls)]))
        # the paired-ratio noise band: half the spread of per-pair
        # ratios, the honest uncertainty on the overhead estimate
        ratios = [t / p - 1.0 for p, t in zip(walls, telemetry_walls)]
        noise_band = 100.0 * (max(ratios) - min(ratios)) / 2.0
        out[str(scale)] = {
            "num_cells": len(netlist.cells),
            "repeats": repeats,
            "wall_seconds": wall,
            "wall_seconds_median": float(np.median(walls)),
            "stage_seconds": dict(result.stage_seconds),
            "round_seconds": [dict(r) for r in result.round_seconds],
            "telemetry_wall_seconds": min(telemetry_walls),
            "telemetry_wall_seconds_median":
                float(np.median(telemetry_walls)),
            # clamped at the emission point: a negative median ratio
            # means the overhead is below this machine's noise floor,
            # and a negative number in the headline JSON reads as a
            # measured speedup, which it is not.  The raw median and
            # the per-pair noise band ride along for forensics.
            "telemetry_overhead_pct": max(0.0, 100.0 * overhead),
            "telemetry_overhead_pct_raw": 100.0 * overhead,
            "telemetry_overhead_noise_band_pct": noise_band,
            "profile_overhead_pct": max(0.0, 100.0 * profile_overhead),
            "profile_overhead_pct_raw": 100.0 * profile_overhead,
            # process high-water mark after this scale's runs — a
            # monotone per-process statistic; the largest scale's row
            # is the one the ledger watches
            "peak_rss_bytes": peak_rss_bytes(),
        }
    return out


def bench_workers(scale: float = 0.1,
                  counts: Optional[List[int]] = None) -> dict:
    """Full-pipeline wall time per execution-backend worker count.

    Runs the same placement at each worker count, checks the results
    are bit-identical to the serial run (the :mod:`repro.parallel`
    contract), and reports the global-stage and total wall seconds.
    ``available_cpus`` is recorded alongside because the achievable
    speedup is bounded by the machine, not the implementation — on a
    single-core container every count measures pool overhead only.

    Each run carries a live :class:`~repro.obs.Recorder`, so the rows
    also report the zero-copy dispatch instrumentation: tasks
    dispatched, actual payload bytes per task (shared-memory segment
    handles), and the dense pickled-task bytes the pre-shared-memory
    implementation would have serialized — the
    ``dispatch_reduction_vs_pickled`` ratio is the headline win and is
    gated at >= 10x by ``meets_10x_dispatch_reduction``.
    """
    counts = counts or [1, 2, 4]
    entries: Dict[str, dict] = {}
    reference = None
    reduction = None
    watch = Stopwatch()
    for workers in counts:
        netlist = load_benchmark(CIRCUIT, scale=scale, seed=0)
        config = PlacementConfig(num_workers=workers)
        recorder = Recorder()
        watch.restart()
        result = Placer3D(netlist, config, recorder=recorder).run()
        wall = watch.elapsed()
        coords = (result.placement.x.tobytes(),
                  result.placement.y.tobytes(),
                  result.placement.z.tobytes())
        if reference is None:
            reference = coords
        entry = {
            "wall_seconds": wall,
            "global_seconds": result.stage_seconds.get("global", 0.0),
            "bit_identical_to_serial": coords == reference,
        }
        # dispatch payload instrumentation (worker counts > 1 only:
        # the serial path ships no payloads).  ``dispatch_bytes`` is
        # what actually crossed the process boundary per task — a
        # ~100-byte shared-memory segment handle — against the dense
        # pickled-task bytes the pre-shm implementation serialized.
        tasks = recorder.counters.get("parallel/tasks", 0.0)
        if tasks > 0:
            dispatch = recorder.counters["parallel/dispatch_bytes"]
            dense = recorder.counters["parallel/dense_task_bytes"]
            entry["tasks"] = int(tasks)
            entry["dispatch_bytes"] = dispatch
            entry["dense_task_bytes"] = dense
            entry["dispatch_bytes_per_task"] = dispatch / tasks
            entry["dense_bytes_per_task"] = dense / tasks
            if dispatch > 0:
                reduction = dense / dispatch
                entry["dispatch_reduction_vs_pickled"] = reduction
        entries[str(workers)] = entry
    first, last = str(counts[0]), str(counts[-1])
    return {
        "circuit": CIRCUIT,
        "scale": scale,
        "available_cpus": os.cpu_count(),
        "workers": entries,
        "global_speedup_max_vs_1":
            entries[first]["global_seconds"]
            / entries[last]["global_seconds"],
        "dispatch_reduction_vs_pickled": reduction,
        "meets_10x_dispatch_reduction":
            bool(reduction is not None and reduction >= 10.0),
    }


#: full-size instance ladder: (circuit, scale, reduced-pipeline?).
#: Ordered by cell count so the monotone process RSS high-water after
#: each row approximates that row's peak.  The synthetic row runs the
#: global stage only — recursive bisection is the parallel,
#: dispatch-heavy stage this PR targets, and a full legalization flow
#: at 50k cells would dominate the bench's wall budget for no extra
#: signal.
LARGE_ROWS = [("ibm01", 0.5, False), ("ibm01", 1.0, False),
              ("synthetic50k", 1.0, True)]

#: subprocess probe: parse a Bookshelf circuit in a *fresh*
#: interpreter so its peak RSS is the parse's own footprint, not this
#: process's accumulated high-water.  Prints one JSON line.
_PARSE_PROBE = """
import json, sys, time
prefix, mode = sys.argv[1], sys.argv[2]
from repro.netlist import bookshelf
from repro.obs import peak_rss_bytes
start = time.perf_counter()
reader = (bookshelf.read_bookshelf_streaming if mode == "streaming"
          else bookshelf.read_bookshelf)
netlist = reader(prefix)
elapsed = time.perf_counter() - start
print(json.dumps({
    "parse_seconds": elapsed,
    "peak_rss_bytes": peak_rss_bytes(),
    "num_cells": netlist.num_cells,
    "num_nets": netlist.num_nets,
}))
"""


def bench_bookshelf_streaming(scale: float = 1.0) -> dict:
    """Streaming vs buffered Bookshelf parse of full-size ibm01.

    Writes the circuit to a temporary Bookshelf triple, then parses it
    with each reader in its own subprocess: a child interpreter's peak
    RSS *is* the parse footprint (the bench process's high-water mark
    is monotone and already inflated by earlier sections).
    ``rss_ratio_streaming_vs_buffered`` is the bounded-memory claim in
    one number; ``csr_nbytes`` (the netlist's signal-CSR array
    footprint) anchors the constant-factor comparison.
    """
    import shutil
    import subprocess
    import tempfile

    from repro.netlist import bookshelf
    from repro.netlist.csr import build_signal_csr

    out_dir = tempfile.mkdtemp(prefix="repro-bench-bookshelf-")
    prefix = os.path.join(out_dir, CIRCUIT)
    try:
        netlist = load_benchmark(CIRCUIT, scale=scale, seed=0)
        bookshelf.write_bookshelf(prefix, netlist)
        csr_nbytes = build_signal_csr(netlist).nbytes
        modes: Dict[str, dict] = {}
        for mode in ("streaming", "buffered"):
            proc = subprocess.run(
                [sys.executable, "-c", _PARSE_PROBE, prefix, mode],
                capture_output=True, text=True, check=True)
            modes[mode] = json.loads(proc.stdout)
    finally:
        shutil.rmtree(out_dir, ignore_errors=True)
    return {
        "circuit": CIRCUIT,
        "scale": scale,
        "csr_nbytes": csr_nbytes,
        "streaming": modes["streaming"],
        "buffered": modes["buffered"],
        "rss_ratio_streaming_vs_buffered":
            modes["streaming"]["peak_rss_bytes"]
            / modes["buffered"]["peak_rss_bytes"],
    }


def bench_large_instances(workers: int = 2) -> dict:
    """Full-size instance rows: wall, peak RSS, dispatch bytes.

    Each row places one :data:`LARGE_ROWS` instance at ``workers``
    execution-backend workers with a live recorder, so the row gates
    the three axes that matter at true scale — wall seconds, the
    process RSS high-water after the row (rows run smallest-first, so
    the monotone statistic tracks each row), and the zero-copy
    dispatch payload bytes.  The reduced (global-only) synthetic row
    exercises the same parallel dispatch path at 4x ibm01's size.
    """
    from repro.core.pipeline import (PipelineSpec, StageEntry,
                                     default_pipeline_spec)

    rows: Dict[str, dict] = {}
    watch = Stopwatch()
    for circuit, scale, reduced in LARGE_ROWS:
        netlist = load_benchmark(circuit, scale=scale, seed=0)
        config = PlacementConfig(num_workers=workers)
        spec = (PipelineSpec(entries=(StageEntry("global"),))
                if reduced else default_pipeline_spec(config))
        recorder = Recorder()
        watch.restart()
        result = Placer3D(netlist, config, recorder=recorder,
                          spec=spec).run()
        wall = watch.elapsed()
        counters = recorder.counters
        tasks = counters.get("parallel/tasks", 0.0)
        dispatch = counters.get("parallel/dispatch_bytes", 0.0)
        dense = counters.get("parallel/dense_task_bytes", 0.0)
        label = (circuit if abs(scale - 1.0) < 1e-12
                 else f"{circuit}@{scale:g}")
        rows[label] = {
            "circuit": circuit,
            "scale": scale,
            "num_cells": netlist.num_cells,
            "pipeline": "global-only" if reduced else "default",
            "wall_seconds": wall,
            "global_seconds": result.stage_seconds.get("global", 0.0),
            "objective": float(result.objective),
            "peak_rss_bytes": peak_rss_bytes(),
            "tasks": int(tasks),
            "dispatch_bytes": dispatch,
            "dense_task_bytes": dense,
            "dispatch_bytes_per_task":
                dispatch / tasks if tasks else None,
            "dispatch_reduction_vs_pickled":
                dense / dispatch if dispatch else None,
        }
    return {
        "workers": workers,
        "available_cpus": os.cpu_count(),
        "rows": rows,
        "bookshelf_streaming": bench_bookshelf_streaming(),
    }


def bench_rebuild(scale: float = 0.05, repeats: int = 30) -> dict:
    """Best-of-N time of one full ``ObjectiveState.rebuild``."""
    from repro.core.objective import ObjectiveState
    from repro.geometry.chip import ChipGeometry
    from repro.netlist.placement import Placement

    netlist = load_benchmark(CIRCUIT, scale=scale, seed=0)
    config = PlacementConfig()
    chip = ChipGeometry.for_cell_area(
        netlist.total_cell_area * 1.2, config.num_layers,
        netlist.average_cell_height)
    placement = Placement.random(netlist, chip, seed=1)
    objective = ObjectiveState(placement, config)
    seconds = _best_of(objective.rebuild, repeats)
    return {"num_nets": len(netlist.nets), "seconds": seconds}


def bench_solve_powers(repeats: int = 10) -> dict:
    """First vs repeated ``solve_powers`` on one geometry.

    The first call pays matrix assembly plus factorization; repeats are
    two triangular back-substitutions against the cached LU.  On the
    seed implementation (fresh ``spsolve`` per call) first and repeat
    cost the same, so the repeat/first ratio measures the caching win.
    """
    from repro.geometry.chip import ChipGeometry
    from repro.thermal.solver import ThermalSolver

    chip = ChipGeometry.for_cell_area(1e-4, 4, 1e-5)
    solver = ThermalSolver(chip, nx=16, ny=16)
    rng = np.random.default_rng(0)
    power = rng.random((16, 16, 4)) * 1e6
    watch = Stopwatch()
    solver.solve_powers(power)
    first = watch.elapsed()
    repeat = _best_of(lambda: solver.solve_powers(power), repeats)
    return {"first_seconds": first, "repeat_seconds": repeat}


def bench_thermal_fidelity(scale: float = 0.1,
                           repeats: int = 200) -> dict:
    """Exact vs surrogate thermal evaluation in the move-loop path.

    Three measurements on one netlist/chip at ``scale``:

    - timing: a warm exact ``solve_powers`` (cached LU, the cost of
      re-evaluating the field after a move) against one surrogate
      ``move_delta`` (the precomputed-column update the inner loop
      actually needs) and one surrogate full-field solve;
    - accuracy: the calibrated surrogate's relative L2 error against
      the exact solver on the live placement's power map;
    - trajectory-neutrality: the same placement under ``exact`` and
      ``adaptive`` fidelity, whose final objectives must be identical.
    """
    from repro.core.context import auto_chip
    from repro.metrics.wirelength import compute_net_metrics
    from repro.netlist.placement import Placement
    from repro.thermal import (PowerModel, SurrogateThermalModel,
                               ThermalSolver)
    from repro.thermal.surrogate import power_map_of, relative_error

    config = PlacementConfig(alpha_temp=1e-5)
    netlist = load_benchmark(CIRCUIT, scale=scale, seed=0)
    chip = auto_chip(netlist, config)
    solver = ThermalSolver(chip, config.tech)
    surrogate = SurrogateThermalModel(chip, config.tech)
    placement = Placement.random(netlist, chip, seed=3)
    powers = PowerModel(netlist, config.tech).cell_powers(
        compute_net_metrics(placement))
    pmap = power_map_of(placement, powers, surrogate.nx, surrogate.ny)

    watch = Stopwatch()
    coeffs = surrogate.calibrate(solver, extra_power_maps=[pmap])
    calibration_seconds = watch.elapsed()
    error = relative_error(surrogate.solve_powers(pmap),
                           solver.solve_powers(pmap))

    solver.solve_powers(pmap)  # warm the LU before timing
    exact_eval = _best_of(lambda: solver.solve_powers(pmap), repeats)
    surrogate_eval = _best_of(lambda: surrogate.solve_powers(pmap),
                              repeats)
    n_tiles = surrogate.nx * surrogate.ny
    delta_eval = _best_of(
        lambda: surrogate.move_delta(0, 0, n_tiles - 1,
                                     chip.num_layers - 1, 1e-4),
        repeats)

    objectives = {}
    for mode in ("exact", "adaptive"):
        netlist = load_benchmark(CIRCUIT, scale=scale, seed=0)
        mode_config = PlacementConfig(alpha_temp=1e-5,
                                      thermal_fidelity=mode)
        objectives[mode] = Placer3D(netlist, mode_config).run().objective

    return {
        "circuit": CIRCUIT,
        "scale": scale,
        "calibration_seconds": calibration_seconds,
        "calibration_residual": float(coeffs.residual),
        "calibrated_relative_error": error,
        "exact_eval_seconds": exact_eval,
        "surrogate_eval_seconds": surrogate_eval,
        "surrogate_delta_seconds": delta_eval,
        "move_loop_speedup": exact_eval / delta_eval,
        "full_solve_speedup": exact_eval / surrogate_eval,
        "exact_objective": float(objectives["exact"]),
        "adaptive_objective": float(objectives["adaptive"]),
        "objective_match":
            bool(objectives["exact"] == objectives["adaptive"]),
    }


def bench_service_cache(scale: float = 0.05) -> dict:
    """Cache-hit latency vs cold placement through the service engine.

    Submits the same request twice to a fresh
    :class:`~repro.service.PlacementEngine`: the first submission runs
    the placement cold (and publishes it to the content-addressed
    result cache), the second short-circuits straight to ``done`` from
    the cache.  ``speedup`` is the cold/hit wall-clock ratio — the
    latency a deduplicated sweep point (or a resubmitted job) saves;
    the two latencies feed the perf ledger as
    ``service_cache/cold_seconds`` and ``service_cache/hit_seconds``.
    """
    import shutil
    import tempfile

    from repro.service import JobRequest, PlacementEngine

    jobs_dir = tempfile.mkdtemp(prefix="repro-bench-jobs-")
    watch = Stopwatch()
    try:
        with PlacementEngine(jobs_dir, workers=1) as engine:
            request = JobRequest(config=PlacementConfig().to_dict(),
                                 circuit=CIRCUIT, scale=scale)
            watch.restart()
            (cold,) = engine.wait([engine.submit(request)])
            cold_seconds = watch.elapsed()
            watch.restart()
            (hit,) = engine.wait([engine.submit(request)])
            hit_seconds = watch.elapsed()
            assert cold["state"] == "done" and cold["cache"] == "miss"
            assert hit["state"] == "done" and hit["cache"] == "hit"
            counters = engine.counters()
    finally:
        shutil.rmtree(jobs_dir, ignore_errors=True)
    return {
        "circuit": CIRCUIT,
        "scale": scale,
        "cold_seconds": cold_seconds,
        "hit_seconds": hit_seconds,
        "speedup": cold_seconds / hit_seconds,
        "cache_hits": counters.get("cache/hit", 0.0),
        "cache_misses": counters.get("cache/miss", 0.0),
    }


def run_bench(scales: Optional[List[float]] = None,
              workers: bool = False, large: bool = False) -> dict:
    writer = SeriesWriter("bench_scaling")
    measurement = {
        "circuit": CIRCUIT,
        "placement": bench_full_placement(scales or SCALES),
        "rebuild": bench_rebuild(),
        "solve_powers": bench_solve_powers(),
        "thermal_fidelity": bench_thermal_fidelity(),
        "service_cache": bench_service_cache(),
    }
    if workers:
        measurement["workers_scaling"] = bench_workers()
    if large:
        measurement["large_instances"] = bench_large_instances()
    writer.row(f"{'scale':>7} {'cells':>7} {'wall (s)':>9} "
               f"{'tele %':>7} {'prof %':>7}  stages")
    for scale, entry in measurement["placement"].items():
        stages = " ".join(f"{k}={v:.3f}"
                          for k, v in entry["stage_seconds"].items())
        writer.row(f"{scale:>7} {entry['num_cells']:>7} "
                   f"{entry['wall_seconds']:>9.3f} "
                   f"{entry['telemetry_overhead_pct']:>+6.1f}% "
                   f"{entry['profile_overhead_pct']:>+6.1f}%  {stages}")
    rb = measurement["rebuild"]
    sp = measurement["solve_powers"]
    writer.row(f"rebuild ({rb['num_nets']} nets): "
               f"{rb['seconds'] * 1e3:.3f} ms")
    writer.row(f"solve_powers: first {sp['first_seconds'] * 1e3:.2f} ms, "
               f"repeat {sp['repeat_seconds'] * 1e3:.3f} ms")
    tf = measurement["thermal_fidelity"]
    writer.row(f"thermal_fidelity (scale {tf['scale']}): exact "
               f"{tf['exact_eval_seconds'] * 1e6:.0f} us, surrogate "
               f"{tf['surrogate_eval_seconds'] * 1e6:.0f} us, "
               f"move_delta {tf['surrogate_delta_seconds'] * 1e6:.1f} "
               f"us ({tf['move_loop_speedup']:.0f}x), rel_err "
               f"{tf['calibrated_relative_error']:.4f}, adaptive=="
               f"exact: {tf['objective_match']}")
    sc = measurement["service_cache"]
    writer.row(f"service_cache (scale {sc['scale']}): cold "
               f"{sc['cold_seconds']:.3f} s, hit "
               f"{sc['hit_seconds'] * 1e3:.1f} ms "
               f"({sc['speedup']:.0f}x)")
    if workers:
        ws = measurement["workers_scaling"]
        for count, entry in ws["workers"].items():
            extra = ""
            if "dispatch_bytes_per_task" in entry:
                extra = (f", {entry['dispatch_bytes_per_task']:.0f} "
                         f"B/task dispatched "
                         f"(dense {entry['dense_bytes_per_task']:.0f})")
            writer.row(
                f"workers={count}: wall {entry['wall_seconds']:.3f} s, "
                f"global {entry['global_seconds']:.3f} s, "
                f"identical={entry['bit_identical_to_serial']}{extra}")
        writer.row(f"global speedup (max vs 1 worker): "
                   f"{ws['global_speedup_max_vs_1']:.2f}x on "
                   f"{ws['available_cpus']} available cpu(s)")
        if ws["dispatch_reduction_vs_pickled"] is not None:
            writer.row(
                f"dispatch payload reduction vs pickled tasks: "
                f"{ws['dispatch_reduction_vs_pickled']:.1f}x "
                f"(>=10x: {ws['meets_10x_dispatch_reduction']})")
    if large:
        li = measurement["large_instances"]
        for label, row in li["rows"].items():
            writer.row(
                f"large {label} ({row['num_cells']} cells, "
                f"{row['pipeline']}): wall {row['wall_seconds']:.1f} s, "
                f"rss {row['peak_rss_bytes'] / 1e6:.0f} MB, "
                f"dispatch {row['dispatch_bytes'] / 1e3:.1f} kB "
                f"over {row['tasks']} tasks")
        bs = li["bookshelf_streaming"]
        writer.row(
            f"bookshelf parse ({bs['circuit']}@{bs['scale']:g}): "
            f"streaming {bs['streaming']['parse_seconds']:.3f} s / "
            f"{bs['streaming']['peak_rss_bytes'] / 1e6:.0f} MB rss, "
            f"buffered {bs['buffered']['parse_seconds']:.3f} s / "
            f"{bs['buffered']['peak_rss_bytes'] / 1e6:.0f} MB rss")
    writer.save()
    return measurement


def merge(before: dict, after: dict) -> dict:
    """Combine two measurements into a before/after/speedup document."""
    speedup: Dict[str, object] = {}
    walls = {}
    for scale in after["placement"]:
        if scale in before.get("placement", {}):
            walls[scale] = (before["placement"][scale]["wall_seconds"]
                            / after["placement"][scale]["wall_seconds"])
    speedup["wall_clock"] = walls
    if "rebuild" in before:
        speedup["rebuild"] = (before["rebuild"]["seconds"]
                              / after["rebuild"]["seconds"])
    if "solve_powers" in before:
        # the caching criterion: a warm solve vs the seed's per-call cost
        speedup["solve_powers_repeat"] = (
            before["solve_powers"]["repeat_seconds"]
            / after["solve_powers"]["repeat_seconds"])
    if "service_cache" in after:
        # self-contained comparison: resubmitting an already-placed
        # job through the service vs placing it cold
        speedup["service_cache_hit"] = after["service_cache"]["speedup"]
    if "thermal_fidelity" in after:
        # self-contained comparison (exact vs surrogate within one
        # tree), surfaced here so the headline document carries it
        tf = after["thermal_fidelity"]
        speedup["thermal_fidelity"] = {
            "move_loop": tf["move_loop_speedup"],
            "full_solve": tf["full_solve_speedup"],
            "calibrated_relative_error":
                tf["calibrated_relative_error"],
            "adaptive_matches_exact": tf["objective_match"],
        }
    return {"before": before, "after": after, "speedup": speedup}


def check_overhead(measurement: dict, budget_pct: float,
                   profile_budget_pct: Optional[float] = None,
                   ) -> List[str]:
    """CI gate: telemetry (and profiling) overhead within budget.

    Clamped at zero — only *positive* regressions flag.  A negative
    reading (telemetry run faster than the plain run) is scheduler
    noise and historically produced spurious gate states in both
    directions.  ``profile_budget_pct`` additionally gates the third
    pair leg (resource tracking + sampling profiler at the default
    rate) against its own, larger budget.
    """
    failures = []
    for scale, entry in measurement.get("placement", {}).items():
        overhead = max(0.0, entry["telemetry_overhead_pct"])
        if overhead > budget_pct:
            failures.append(
                f"scale {scale}: telemetry overhead "
                f"{overhead:.2f}% exceeds budget {budget_pct:.2f}%")
        if profile_budget_pct is not None \
                and "profile_overhead_pct" in entry:
            profiled = max(0.0, entry["profile_overhead_pct"])
            if profiled > profile_budget_pct:
                failures.append(
                    f"scale {scale}: profiling overhead "
                    f"{profiled:.2f}% exceeds budget "
                    f"{profile_budget_pct:.2f}%")
    return failures


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", help="write measurement JSON here")
    parser.add_argument("--baseline",
                        help="previous measurement JSON to merge as "
                             "'before'")
    parser.add_argument("--scales", type=float, nargs="*",
                        help=f"instance-size ladder (default {SCALES})")
    parser.add_argument("--workers", action="store_true",
                        help="also measure execution-backend scaling "
                             "(workers 1/2/4 at scale 0.1, with a "
                             "bit-identity check and dispatch-payload "
                             "instrumentation)")
    parser.add_argument("--large", action="store_true",
                        help="also run the full-size instance rows "
                             "(ibm01 at scale 0.5/1.0, synthetic50k "
                             "global-only) and the streaming-parse "
                             "RSS probe; takes several minutes")
    parser.add_argument("--check-overhead", type=float, metavar="PCT",
                        help="exit nonzero when telemetry overhead at "
                             "any scale exceeds this budget (negative "
                             "readings clamp to zero and never flag)")
    parser.add_argument("--check-profile-overhead", type=float,
                        metavar="PCT",
                        help="also gate the profiled-run overhead "
                             "(sampling profiler + resource tracking "
                             "at the default rate) against this "
                             "budget")
    args = parser.parse_args()
    baseline = None
    if args.baseline:
        # read up front so a bad path fails before the slow measurement
        with open(args.baseline) as fh:
            baseline = json.load(fh)
    measurement = run_bench(args.scales, workers=args.workers,
                            large=args.large)
    document = measurement
    if baseline is not None:
        document = merge(baseline, measurement)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(document, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if args.check_overhead is not None \
            or args.check_profile_overhead is not None:
        budget = (args.check_overhead
                  if args.check_overhead is not None else 100.0)
        failures = check_overhead(
            measurement, budget,
            profile_budget_pct=args.check_profile_overhead)
        for line in failures:
            print(f"OVERHEAD GATE: {line}", file=sys.stderr)
        if failures:
            raise SystemExit(1)
        print(f"overhead gate passed (budget {budget:.2f}%"
              + (f", profiled {args.check_profile_overhead:.2f}%"
                 if args.check_profile_overhead is not None else "")
              + ")")


def test_bench_scaling(benchmark):
    assert benchmark.pedantic(
        lambda: bool(run_bench([0.025])), rounds=1, iterations=1)


if __name__ == "__main__":
    main()
