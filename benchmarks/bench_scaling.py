"""Scaling benchmark for the vectorized placement kernels.

Unlike the figure/table reproductions, this benchmark gates the
*implementation*, not the science: it times the full placement pipeline
per stage across a ladder of instance sizes, plus the two kernel
micro-benchmarks the vectorization targeted —

- ``ObjectiveState.rebuild``: the CSR ``reduceat`` full recompute of
  every net's extremes, wirelength, and via counts;
- ``ThermalSolver.solve_powers``: repeated solves on a fixed geometry,
  which hit the cached sparse-LU factorization after the first call
  (the seed implementation ran a full ``spsolve`` per call).

It also gates the observability layer: each scale is placed with the
default (no-op ambient) recorder and with a live ``repro.obs.Recorder``
— best-of-3 each, so scheduler noise does not swamp the comparison —
and the relative difference of the two minima is recorded as
``telemetry_overhead_pct`` (budget: <= 2%, see DESIGN.md).

``--workers`` adds an execution-backend scaling row: the full pipeline
at workers 1/2/4 (scale 0.1) with a bit-identity check against the
serial run, plus the machine's ``available_cpus`` — the honest upper
bound on any measured speedup.

Results are written as machine-readable JSON so before/after runs can
be compared; ``--baseline`` merges a previous run into a single
``{"before": ..., "after": ..., "speedup": ...}`` document (the
repo-root ``BENCH_scaling.json`` is such a merged document).

Usage::

    PYTHONPATH=src python benchmarks/bench_scaling.py --json after.json
    # ... check out the baseline tree, run again into before.json ...
    PYTHONPATH=src python benchmarks/bench_scaling.py \
        --json BENCH_scaling.json --baseline before.json

Under pytest-benchmark it runs the default ladder and asserts nothing
beyond completion, like the other benchmarks here.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from typing import Dict, List, Optional

import numpy as np

from common import SeriesWriter
from repro import Placer3D, PlacementConfig, load_benchmark
from repro.obs import Recorder

#: instance-size ladder (fractions of published ibm01 cell count)
SCALES = [0.025, 0.05, 0.1]
CIRCUIT = "ibm01"


def _best_of(fn, repeats: int = 5) -> float:
    """Minimum wall-clock of several calls (noise-robust statistic)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_full_placement(scales: List[float],
                         repeats: int = 3) -> Dict[str, dict]:
    """Wall-clock and per-stage seconds of Placer3D per scale.

    Each scale runs two configurations — the default path (private
    recorder, no ambient instrumentation) and a fully instrumented run
    with a live ``Recorder`` installed — and each configuration runs
    ``repeats`` times, keeping the best wall clock.  A single timing
    pair made the telemetry-overhead gate a coin flip (scheduler noise
    at the 0.025 scale is larger than the <= 2% budget being measured);
    best-of-N compares two noise-robust minima instead.  The netlist is
    regenerated between runs because placement mutates it (TRR nets).
    """
    out: Dict[str, dict] = {}
    for scale in scales:
        wall = float("inf")
        result = None
        for _ in range(repeats):
            netlist = load_benchmark(CIRCUIT, scale=scale, seed=0)
            start = time.perf_counter()
            attempt = Placer3D(netlist, PlacementConfig()).run()
            elapsed = time.perf_counter() - start
            if elapsed < wall:
                wall, result = elapsed, attempt

        telemetry_wall = float("inf")
        for _ in range(repeats):
            netlist = load_benchmark(CIRCUIT, scale=scale, seed=0)
            start = time.perf_counter()
            Placer3D(netlist, PlacementConfig(),
                     recorder=Recorder()).run()
            telemetry_wall = min(telemetry_wall,
                                 time.perf_counter() - start)
        assert result is not None
        out[str(scale)] = {
            "num_cells": len(netlist.cells),
            "repeats": repeats,
            "wall_seconds": wall,
            "stage_seconds": dict(result.stage_seconds),
            "round_seconds": [dict(r) for r in result.round_seconds],
            "telemetry_wall_seconds": telemetry_wall,
            "telemetry_overhead_pct":
                100.0 * (telemetry_wall / wall - 1.0) if wall > 0 else 0.0,
        }
    return out


def bench_workers(scale: float = 0.1,
                  counts: Optional[List[int]] = None) -> dict:
    """Full-pipeline wall time per execution-backend worker count.

    Runs the same placement at each worker count, checks the results
    are bit-identical to the serial run (the :mod:`repro.parallel`
    contract), and reports the global-stage and total wall seconds.
    ``available_cpus`` is recorded alongside because the achievable
    speedup is bounded by the machine, not the implementation — on a
    single-core container every count measures pool overhead only.
    """
    counts = counts or [1, 2, 4]
    entries: Dict[str, dict] = {}
    reference = None
    for workers in counts:
        netlist = load_benchmark(CIRCUIT, scale=scale, seed=0)
        config = PlacementConfig(num_workers=workers)
        start = time.perf_counter()
        result = Placer3D(netlist, config).run()
        wall = time.perf_counter() - start
        coords = (result.placement.x.tobytes(),
                  result.placement.y.tobytes(),
                  result.placement.z.tobytes())
        if reference is None:
            reference = coords
        entries[str(workers)] = {
            "wall_seconds": wall,
            "global_seconds": result.stage_seconds.get("global", 0.0),
            "bit_identical_to_serial": coords == reference,
        }
    first, last = str(counts[0]), str(counts[-1])
    return {
        "circuit": CIRCUIT,
        "scale": scale,
        "available_cpus": os.cpu_count(),
        "workers": entries,
        "global_speedup_max_vs_1":
            entries[first]["global_seconds"]
            / entries[last]["global_seconds"],
    }


def bench_rebuild(scale: float = 0.05, repeats: int = 30) -> dict:
    """Best-of-N time of one full ``ObjectiveState.rebuild``."""
    from repro.core.objective import ObjectiveState
    from repro.geometry.chip import ChipGeometry
    from repro.netlist.placement import Placement

    netlist = load_benchmark(CIRCUIT, scale=scale, seed=0)
    config = PlacementConfig()
    chip = ChipGeometry.for_cell_area(
        netlist.total_cell_area * 1.2, config.num_layers,
        netlist.average_cell_height)
    placement = Placement.random(netlist, chip, seed=1)
    objective = ObjectiveState(placement, config)
    seconds = _best_of(objective.rebuild, repeats)
    return {"num_nets": len(netlist.nets), "seconds": seconds}


def bench_solve_powers(repeats: int = 10) -> dict:
    """First vs repeated ``solve_powers`` on one geometry.

    The first call pays matrix assembly plus factorization; repeats are
    two triangular back-substitutions against the cached LU.  On the
    seed implementation (fresh ``spsolve`` per call) first and repeat
    cost the same, so the repeat/first ratio measures the caching win.
    """
    from repro.geometry.chip import ChipGeometry
    from repro.thermal.solver import ThermalSolver

    chip = ChipGeometry.for_cell_area(1e-4, 4, 1e-5)
    solver = ThermalSolver(chip, nx=16, ny=16)
    rng = np.random.default_rng(0)
    power = rng.random((16, 16, 4)) * 1e6
    start = time.perf_counter()
    solver.solve_powers(power)
    first = time.perf_counter() - start
    repeat = _best_of(lambda: solver.solve_powers(power), repeats)
    return {"first_seconds": first, "repeat_seconds": repeat}


def run_bench(scales: Optional[List[float]] = None,
              workers: bool = False) -> dict:
    writer = SeriesWriter("bench_scaling")
    measurement = {
        "circuit": CIRCUIT,
        "placement": bench_full_placement(scales or SCALES),
        "rebuild": bench_rebuild(),
        "solve_powers": bench_solve_powers(),
    }
    if workers:
        measurement["workers_scaling"] = bench_workers()
    writer.row(f"{'scale':>7} {'cells':>7} {'wall (s)':>9} "
               f"{'tele %':>7}  stages")
    for scale, entry in measurement["placement"].items():
        stages = " ".join(f"{k}={v:.3f}"
                          for k, v in entry["stage_seconds"].items())
        writer.row(f"{scale:>7} {entry['num_cells']:>7} "
                   f"{entry['wall_seconds']:>9.3f} "
                   f"{entry['telemetry_overhead_pct']:>+6.1f}%  {stages}")
    rb = measurement["rebuild"]
    sp = measurement["solve_powers"]
    writer.row(f"rebuild ({rb['num_nets']} nets): "
               f"{rb['seconds'] * 1e3:.3f} ms")
    writer.row(f"solve_powers: first {sp['first_seconds'] * 1e3:.2f} ms, "
               f"repeat {sp['repeat_seconds'] * 1e3:.3f} ms")
    if workers:
        ws = measurement["workers_scaling"]
        for count, entry in ws["workers"].items():
            writer.row(
                f"workers={count}: wall {entry['wall_seconds']:.3f} s, "
                f"global {entry['global_seconds']:.3f} s, "
                f"identical={entry['bit_identical_to_serial']}")
        writer.row(f"global speedup (max vs 1 worker): "
                   f"{ws['global_speedup_max_vs_1']:.2f}x on "
                   f"{ws['available_cpus']} available cpu(s)")
    writer.save()
    return measurement


def merge(before: dict, after: dict) -> dict:
    """Combine two measurements into a before/after/speedup document."""
    speedup: Dict[str, object] = {}
    walls = {}
    for scale in after["placement"]:
        if scale in before.get("placement", {}):
            walls[scale] = (before["placement"][scale]["wall_seconds"]
                            / after["placement"][scale]["wall_seconds"])
    speedup["wall_clock"] = walls
    if "rebuild" in before:
        speedup["rebuild"] = (before["rebuild"]["seconds"]
                              / after["rebuild"]["seconds"])
    if "solve_powers" in before:
        # the caching criterion: a warm solve vs the seed's per-call cost
        speedup["solve_powers_repeat"] = (
            before["solve_powers"]["repeat_seconds"]
            / after["solve_powers"]["repeat_seconds"])
    return {"before": before, "after": after, "speedup": speedup}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", help="write measurement JSON here")
    parser.add_argument("--baseline",
                        help="previous measurement JSON to merge as "
                             "'before'")
    parser.add_argument("--scales", type=float, nargs="*",
                        help=f"instance-size ladder (default {SCALES})")
    parser.add_argument("--workers", action="store_true",
                        help="also measure execution-backend scaling "
                             "(workers 1/2/4 at scale 0.1, with a "
                             "bit-identity check)")
    args = parser.parse_args()
    baseline = None
    if args.baseline:
        # read up front so a bad path fails before the slow measurement
        with open(args.baseline) as fh:
            baseline = json.load(fh)
    measurement = run_bench(args.scales, workers=args.workers)
    document = measurement
    if baseline is not None:
        document = merge(baseline, measurement)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(document, fh, indent=2, sort_keys=True)
            fh.write("\n")


def test_bench_scaling(benchmark):
    assert benchmark.pedantic(
        lambda: bool(run_bench([0.025])), rounds=1, iterations=1)


if __name__ == "__main__":
    main()
