"""Figure 10: runtime vs circuit size, thermal and regular placement.

The paper fits runtime ~ 0.0002 * n^1.19 over the 18 circuits and shows
thermal placement costs about the same as regular placement.  Absolute
seconds are not comparable (their C++/3.2 GHz vs our Python), but the
*shape* — near-linear scaling and thermal ~ regular — is reproduced: we
place a ladder of instance sizes in both modes and fit the power-law
exponent.
"""

import math

import numpy as np

from common import SCALE, SeriesWriter, run_placement
from repro import PlacementConfig

#: instance sizes as multiples of the base REPRO_SCALE
SIZE_LADDER = [0.5, 1.0, 2.0, 4.0]


def run_fig10():
    writer = SeriesWriter("fig10_runtime")
    writer.row(f"Figure 10 reproduction (ibm01 ladder around scale "
               f"{SCALE})")
    writer.row(f"{'cells':>7} {'regular (s)':>12} {'thermal (s)':>12}")
    sizes = []
    regular = []
    thermal = []
    for mult in SIZE_LADDER:
        scale = SCALE * mult
        r = run_placement("ibm01", PlacementConfig(
            alpha_ilv=1e-5, alpha_temp=0.0, num_layers=4, seed=0),
            scale=scale, thermal=False)
        t = run_placement("ibm01", PlacementConfig(
            alpha_ilv=1e-5, alpha_temp=1e-5, num_layers=4, seed=0),
            scale=scale, thermal=False)
        sizes.append(r.num_cells)
        regular.append(r.runtime_seconds)
        thermal.append(t.runtime_seconds)
        writer.row(f"{r.num_cells:>7} {r.runtime_seconds:>12.2f} "
                   f"{t.runtime_seconds:>12.2f}")

    exp_reg = np.polyfit(np.log(sizes), np.log(regular), 1)[0]
    exp_thm = np.polyfit(np.log(sizes), np.log(thermal), 1)[0]
    ratio = float(np.mean(np.array(thermal) / np.array(regular)))
    writer.row("")
    writer.row(f"power-law exponent: regular {exp_reg:.2f}, thermal "
               f"{exp_thm:.2f} (paper: 1.19)")
    writer.row(f"thermal / regular runtime: {ratio:.2f}x "
               f"(paper: ~1x)")

    assert exp_reg < 2.0, "placement runtime is super-quadratic"
    assert ratio < 3.0, "thermal placement is much slower than regular"
    writer.save()
    return True


def test_fig10_runtime(benchmark):
    assert benchmark.pedantic(run_fig10, rounds=1, iterations=1)
