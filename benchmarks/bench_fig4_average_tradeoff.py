"""Figure 4: suite-averaged via density and wirelength change vs
alpha_ILV, plus the paper's headline claim.

The paper reports that "wirelength reductions within 2% of the maximum
can be achieved using 46% fewer interlayer vias": walking up the
alpha_ILV sweep from the WL-optimal (via-greedy) end, a large fraction
of the vias can be dropped before wirelength degrades by 2%.  This
benchmark reproduces the averaged curves and recomputes that headline
number.
"""

from common import (
    ALPHA_ILV_SWEEP,
    SCALE,
    SeriesWriter,
    averaged,
    pct,
    suite_subset,
)
from repro import PlacementConfig


def run_fig4():
    writer = SeriesWriter("fig4_average_tradeoff")
    writer.row(f"Figure 4 reproduction (scale {SCALE}, "
               f"{len(suite_subset())} circuits)")
    writer.row(f"{'alpha_ILV':>10} {'avg ILV density':>16} "
               f"{'avg WL (m)':>12} {'WL change':>10}")

    series = []
    for alpha in ALPHA_ILV_SWEEP:
        mean = averaged(
            suite_subset(),
            lambda seed, a=alpha: PlacementConfig(
                alpha_ilv=a, alpha_temp=0.0, num_layers=4, seed=seed),
            thermal=False)
        series.append((alpha, mean))

    min_wl = min(m["wirelength"] for _, m in series)
    for alpha, mean in series:
        writer.row(f"{alpha:>10.1e} {mean['ilv_density']:>16.4e} "
                   f"{mean['wirelength']:>12.5e} "
                   f"{pct(mean['wirelength'], min_wl):>+9.1f}%")

    # headline: vias saved while staying within 2% of the best WL
    base_ilv = series[0][1]["ilv"]  # cheapest vias = most vias
    within = [m for _, m in series
              if m["wirelength"] <= 1.02 * min_wl]
    best = min(within, key=lambda m: m["ilv"])
    saved = -pct(best["ilv"], base_ilv)
    writer.row("")
    writer.row(f"headline: {saved:.0f}% fewer ILVs within 2% of the "
               f"maximum wirelength reduction (paper: 46%)")
    assert saved > 0, "no via savings found within the 2% WL band"
    writer.save()
    return True


def test_fig4_average_tradeoff(benchmark):
    assert benchmark.pedantic(run_fig4, rounds=1, iterations=1)
