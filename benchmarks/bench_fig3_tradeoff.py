"""Figure 3: per-circuit tradeoff between wirelength and via density.

For each circuit, the interlayer-via coefficient is swept over ~6
decades with the thermal coefficient at zero; every sweep point is one
placement, producing the (wirelength, ILV density per interlayer)
tradeoff curve.  The paper's curves fall from ~1e12 to ~1e9 vias/m^2 as
wirelength grows; the reproduced curves must show the same monotone
shape: more expensive vias -> fewer vias, longer wires.
"""

from common import (
    ALPHA_ILV_SWEEP,
    SCALE,
    SeriesWriter,
    run_placement,
    suite_subset,
)
from repro import PlacementConfig


def run_fig3():
    writer = SeriesWriter("fig3_tradeoff")
    writer.row(f"Figure 3 reproduction (scale {SCALE}, alpha_TEMP = 0)")
    writer.row(f"{'circuit':<10} {'alpha_ILV':>10} {'WL (m)':>12} "
               f"{'ILVs':>8} {'ILV density (/m^2)':>19}")
    curves = {}
    for circuit in suite_subset():
        points = []
        for alpha in ALPHA_ILV_SWEEP:
            config = PlacementConfig(alpha_ilv=alpha, alpha_temp=0.0,
                                     num_layers=4, seed=0)
            report = run_placement(circuit, config, thermal=False)
            points.append((alpha, report.wirelength, report.ilv,
                           report.ilv_density))
            writer.row(f"{circuit:<10} {alpha:>10.1e} "
                       f"{report.wirelength:>12.5e} {report.ilv:>8} "
                       f"{report.ilv_density:>19.4e}")
        curves[circuit] = points

    # shape checks: via count falls and wirelength rises end-to-end
    for circuit, points in curves.items():
        first, last = points[0], points[-1]
        assert last[2] < first[2], \
            f"{circuit}: via count did not fall along the sweep"
        assert last[1] > 0.9 * first[1], \
            f"{circuit}: wirelength collapsed along the sweep"
    writer.save()
    return True


def test_fig3_tradeoff(benchmark):
    assert benchmark.pedantic(run_fig3, rounds=1, iterations=1)
