"""Figure 5: tradeoff curves for ibm01 with 1-10 layers.

The paper increases the layer count from one to ten and shows the
wirelength/via tradeoff curve shifting toward shorter wirelengths: more
layers = more wirelength reduction available.  We sweep a subset of
layer counts over a short alpha_ILV sweep and check the shift.
"""

from common import SCALE, SeriesWriter, run_placement
from repro import PlacementConfig

LAYER_COUNTS = [1, 2, 3, 4, 6, 8, 10]
ALPHAS = [2e-6, 1e-5, 1.6e-4]


def run_fig5():
    writer = SeriesWriter("fig5_layers")
    writer.row(f"Figure 5 reproduction (ibm01, scale {SCALE})")
    writer.row(f"{'layers':>6} {'alpha_ILV':>10} {'WL (m)':>12} "
               f"{'ILVs/interlayer':>16}")
    best_wl = {}
    for layers in LAYER_COUNTS:
        per_interlayer = max(layers - 1, 1)
        best = None
        for alpha in ALPHAS:
            config = PlacementConfig(alpha_ilv=alpha, alpha_temp=0.0,
                                     num_layers=layers, seed=0)
            report = run_placement("ibm01", config, thermal=False)
            writer.row(f"{layers:>6} {alpha:>10.1e} "
                       f"{report.wirelength:>12.5e} "
                       f"{report.ilv / per_interlayer:>16.1f}")
            best = (report.wirelength if best is None
                    else min(best, report.wirelength))
        best_wl[layers] = best

    writer.row("")
    writer.row(f"{'layers':>6} {'best WL (m)':>12} {'vs 1 layer':>11}")
    for layers in LAYER_COUNTS:
        change = (best_wl[layers] / best_wl[1] - 1) * 100
        writer.row(f"{layers:>6} {best_wl[layers]:>12.5e} "
                   f"{change:>+10.1f}%")

    # shape: many layers beat few layers on best-case wirelength
    assert best_wl[8] < best_wl[1]
    assert best_wl[4] < best_wl[1]
    writer.save()
    return True


def test_fig5_layers(benchmark):
    assert benchmark.pedantic(run_fig5, rounds=1, iterations=1)
