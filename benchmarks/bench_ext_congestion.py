"""Extension study: routing congestion across the via-coefficient sweep.

Not a figure from the paper — an analysis its tradeoff raises naturally:
restricting interlayer vias (raising alpha_ILV) forces connectivity into
the lateral routing layers, so the wire-demand map should get hotter as
vias get scarcer, while the via-demand map cools.  This quantifies the
effect with the probabilistic congestion model.
"""

from common import SCALE, SeriesWriter, run_placement
from repro import PlacementConfig, Placer3D, load_benchmark
from repro.metrics import estimate_congestion

ALPHAS = [5e-9, 2e-6, 1e-5, 1.6e-4]


def run_congestion():
    writer = SeriesWriter("ext_congestion")
    writer.row(f"Extension: congestion vs alpha_ILV (ibm01, scale "
               f"{SCALE})")
    writer.row(f"{'alpha_ILV':>10} {'wire demand':>12} "
               f"{'peak/avg':>9} {'peak via/bin':>13}")
    rows = []
    for alpha in ALPHAS:
        netlist = load_benchmark("ibm01", scale=SCALE)
        config = PlacementConfig(alpha_ilv=alpha, alpha_temp=0.0,
                                 num_layers=4, seed=0)
        result = Placer3D(netlist, config).run()
        cmap = estimate_congestion(result.placement, nx=12)
        rows.append((alpha, cmap))
        writer.row(f"{alpha:>10.1e} {cmap.total.sum():>12.1f} "
                   f"{cmap.peak_to_average:>8.2f}x "
                   f"{cmap.peak_via_density:>13.2f}")

    first, last = rows[0][1], rows[-1][1]
    writer.row("")
    writer.row(f"via demand peak: {first.peak_via_density:.1f} -> "
               f"{last.peak_via_density:.1f} vias/bin as vias get "
               f"costlier")
    assert last.peak_via_density < first.peak_via_density
    writer.save()
    return True


def test_ext_congestion(benchmark):
    assert benchmark.pedantic(run_congestion, rounds=1, iterations=1)
