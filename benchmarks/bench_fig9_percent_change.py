"""Figure 9: suite-averaged percent change of every metric vs
alpha_TEMP.

The paper's summary figure: with alpha_ILV = 1e-5 and the thermal
coefficient swept from 0 to 4.1e-5, it plots the average percent change
(over ibm01-ibm18) of interlayer-via count, wirelength, total power,
average temperature and maximum temperature, reporting "when average
temperatures are reduced by 19%, wirelengths increase by only 1%".

We reproduce the same series over the benchmark subset.  The qualitative
shape reproduced and asserted: temperatures fall at small-to-moderate
alpha_TEMP while wirelength stays within a few percent.  The magnitude
of the reduction is smaller than the paper's (see EXPERIMENTS.md for the
analysis of why), so the assertion is on direction, not on 19%.
"""

import numpy as np

import common
from common import (
    SCALE,
    SeriesWriter,
    pct,
    suite_subset,
)
from repro import PlacementConfig

ALPHA_TEMPS = [0.0, 2.6e-6, 1e-5, 4.1e-5]
#: single-seed thermal deltas are noisy; always average >= 2 seeds
SEEDS = max(2, common.NUM_SEEDS)


def averaged(circuits, make_config, thermal=True, scale=None):
    """Suite average with this figure's own (>= 2) seed count."""
    acc = {"wirelength": 0.0, "ilv": 0.0, "total_power": 0.0,
           "average_temperature": 0.0, "max_temperature": 0.0}
    n = 0
    for circuit in circuits:
        for seed in range(SEEDS):
            report = common.run_placement(circuit, make_config(seed),
                                          scale=scale, seed=seed,
                                          thermal=thermal)
            for key in acc:
                acc[key] += getattr(report, key)
            n += 1
    return {key: value / n for key, value in acc.items()}


def run_fig9():
    writer = SeriesWriter("fig9_percent_change")
    writer.row(f"Figure 9 reproduction (scale {SCALE}, "
               f"{len(suite_subset())} circuits, alpha_ILV = 1e-5, "
               f"{SEEDS} seeds)")
    writer.row(f"{'alpha_TEMP':>10} {'ILV':>7} {'WL':>7} {'power':>7} "
               f"{'avgT':>7} {'maxT':>7}")

    series = {}
    for at in ALPHA_TEMPS:
        series[at] = averaged(
            suite_subset(),
            lambda seed, a=at: PlacementConfig(
                alpha_ilv=1e-5, alpha_temp=a, num_layers=4, seed=seed))

    base = series[0.0]
    best_temp_drop = 0.0
    wl_at_best = 0.0
    for at in ALPHA_TEMPS:
        m = series[at]
        d_ilv = pct(m["ilv"], base["ilv"])
        d_wl = pct(m["wirelength"], base["wirelength"])
        d_p = pct(m["total_power"], base["total_power"])
        d_avg = pct(m["average_temperature"],
                    base["average_temperature"])
        d_max = pct(m["max_temperature"], base["max_temperature"])
        writer.row(f"{at:>10.1e} {d_ilv:>+6.1f}% {d_wl:>+6.1f}% "
                   f"{d_p:>+6.1f}% {d_avg:>+6.1f}% {d_max:>+6.1f}%")
        if -d_avg > best_temp_drop:
            best_temp_drop = -d_avg
            wl_at_best = d_wl

    writer.row("")
    writer.row(f"headline: best average-temperature reduction "
               f"{best_temp_drop:.1f}% at {wl_at_best:+.1f}% wirelength "
               f"(paper: 19% at +1%)")
    assert best_temp_drop > 0, \
        "thermal placement never reduced the average temperature"
    writer.save()
    return True


def test_fig9_percent_change(benchmark):
    assert benchmark.pedantic(run_fig9, rounds=1, iterations=1)
