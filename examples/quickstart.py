"""Quickstart: place a 3D IC and report wirelength, vias and temperature.

Run:
    python examples/quickstart.py [scale]

Places a synthetic equivalent of the paper's ibm01 benchmark on a
4-layer stack with both thermal mechanisms enabled, then evaluates the
result with the full-chip thermal solver.
"""

import sys

from repro import (
    Placer3D,
    PlacementConfig,
    PlacementReport,
    evaluate_placement,
    load_benchmark,
)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    print(f"Loading ibm01 at scale {scale} "
          f"(synthetic regeneration of the IBM-PLACE circuit)...")
    netlist = load_benchmark("ibm01", scale=scale)
    print(f"  {netlist.num_cells} cells, {netlist.num_nets} nets, "
          f"{netlist.num_pins()} pins")

    config = PlacementConfig(
        alpha_ilv=1e-5,    # one via ~ 10 um of wire (paper's midpoint)
        alpha_temp=1e-5,   # thermal placement on
        num_layers=4,
        seed=0,
    )
    placer = Placer3D(netlist, config)
    chip = placer.chip
    print(f"  die {chip.width*1e6:.1f} x {chip.height*1e6:.1f} um, "
          f"{chip.num_layers} layers, "
          f"{chip.rows_per_layer} rows/layer")

    print("Placing (global -> moves/swaps -> cell shifting -> detailed "
          "legalization)...")
    result = placer.run(check=True)
    print(f"  done in {result.runtime_seconds:.1f}s "
          f"({ {k: round(v, 2) for k, v in result.stage_seconds.items()} })")

    report = evaluate_placement(result.placement, config.tech,
                                runtime_seconds=result.runtime_seconds)
    print()
    print(PlacementReport.header())
    print(report.row())
    print()
    print(f"objective (Eq. 3)      : {result.objective:.4e}")
    print(f"wirelength             : {report.wirelength*1e3:.3f} mm")
    print(f"interlayer vias        : {report.ilv} "
          f"({report.ilv_density:.3e} per m^2 per interlayer)")
    print(f"dynamic power          : {report.total_power*1e3:.3f} mW")
    print(f"avg / max temperature  : {report.average_temperature:.2f} / "
          f"{report.max_temperature:.2f} K above ambient")


if __name__ == "__main__":
    main()
