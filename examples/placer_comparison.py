"""Compare the recursive-bisection placer against the baselines.

Places one circuit with the paper's partitioning-based flow, a classic
simulated annealer and a random+legalize baseline — all sharing the same
objective, legalizer and metrics — then prints objective quality,
congestion statistics and a density map of the winner's bottom layer.

Run:
    python examples/placer_comparison.py [scale]
"""

import sys

from repro import Placer3D, PlacementConfig, load_benchmark
from repro.core.baseline import (
    AnnealingPlacer,
    AnnealingSchedule,
    random_baseline,
)
from repro.metrics import estimate_congestion
from repro import viz


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.03
    config = PlacementConfig(alpha_ilv=1e-5, alpha_temp=0.0,
                             num_layers=4, seed=0)

    runs = {}
    print(f"Placing ibm01 (scale {scale}) three ways...\n")
    netlist = load_benchmark("ibm01", scale=scale)
    runs["random+legalize"] = random_baseline(netlist, config)
    netlist = load_benchmark("ibm01", scale=scale)
    runs["simulated annealing"] = AnnealingPlacer(
        netlist, config,
        schedule=AnnealingSchedule(moves_per_cell=60, stages=20)).run()
    netlist = load_benchmark("ibm01", scale=scale)
    runs["recursive bisection"] = Placer3D(netlist, config).run()

    print(f"{'placer':<22} {'objective':>12} {'WL (mm)':>9} "
          f"{'ILVs':>6} {'congestion':>11} {'time (s)':>9}")
    for label, result in runs.items():
        cmap = estimate_congestion(result.placement, nx=12)
        print(f"{label:<22} {result.objective:>12.5e} "
              f"{result.wirelength*1e3:>9.3f} {result.ilv:>6} "
              f"{cmap.peak_to_average:>10.2f}x "
              f"{result.runtime_seconds:>9.1f}")

    best = min(runs.values(), key=lambda r: r.objective)
    print()
    print(viz.density_map(best.placement, layer=0, nx=48))


if __name__ == "__main__":
    main()
