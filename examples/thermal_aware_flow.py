"""Thermal-aware placement: temperature vs wirelength/via cost.

Places the same circuit with thermal placement off and on, then shows
what the thermal mechanisms (net weighting + TRR nets, Sections 3.1-3.2)
bought: lower average/peak temperature, power shifted toward the
heat-sink layer — and what it cost in wirelength and vias (the paper's
Figure 9 tradeoff).

Run:
    python examples/thermal_aware_flow.py [alpha_temp] [scale]
"""

import sys

import numpy as np

from repro import (
    Placer3D,
    PlacementConfig,
    evaluate_placement,
    load_benchmark,
)
from repro.metrics.wirelength import compute_net_metrics
from repro.thermal import PowerModel, analyze_placement


def layer_power_fractions(placement, tech):
    """Fraction of dynamic power dissipated on each layer."""
    pm = PowerModel(placement.netlist, tech)
    powers = pm.cell_powers(compute_net_metrics(placement))
    per_layer = np.zeros(placement.chip.num_layers)
    for cid in range(placement.netlist.num_cells):
        per_layer[int(placement.z[cid])] += powers[cid]
    return per_layer / per_layer.sum()


def run(alpha_temp: float, scale: float):
    netlist = load_benchmark("ibm01", scale=scale)
    config = PlacementConfig(alpha_ilv=1e-5, alpha_temp=alpha_temp,
                             num_layers=4, seed=0)
    result = Placer3D(netlist, config).run(check=True)
    report = evaluate_placement(result.placement, config.tech)
    fractions = layer_power_fractions(result.placement, config.tech)
    return result, report, fractions


def main() -> None:
    alpha_temp = float(sys.argv[1]) if len(sys.argv) > 1 else 1e-5
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.05

    print("Placing with thermal placement OFF (alpha_temp = 0)...")
    base_res, base, base_frac = run(0.0, scale)
    print(f"Placing with thermal placement ON "
          f"(alpha_temp = {alpha_temp:.1e})...")
    therm_res, therm, therm_frac = run(alpha_temp, scale)

    def pct(new, old):
        return f"{(new / old - 1) * 100:+6.1f}%"

    print()
    print(f"{'metric':<28} {'baseline':>12} {'thermal':>12} {'change':>8}")
    print(f"{'wirelength (mm)':<28} {base.wirelength*1e3:>12.3f} "
          f"{therm.wirelength*1e3:>12.3f} "
          f"{pct(therm.wirelength, base.wirelength):>8}")
    print(f"{'interlayer vias':<28} {base.ilv:>12} {therm.ilv:>12} "
          f"{pct(therm.ilv, base.ilv):>8}")
    print(f"{'total power (mW)':<28} {base.total_power*1e3:>12.3f} "
          f"{therm.total_power*1e3:>12.3f} "
          f"{pct(therm.total_power, base.total_power):>8}")
    print(f"{'avg temperature (K)':<28} "
          f"{base.average_temperature:>12.3f} "
          f"{therm.average_temperature:>12.3f} "
          f"{pct(therm.average_temperature, base.average_temperature):>8}")
    print(f"{'max temperature (K)':<28} {base.max_temperature:>12.3f} "
          f"{therm.max_temperature:>12.3f} "
          f"{pct(therm.max_temperature, base.max_temperature):>8}")

    print()
    print("Power distribution across layers (layer 0 = heat sink):")
    header = " ".join(f"L{k:<6}" for k in range(len(base_frac)))
    print(f"  {'':<10} {header}")
    print("  baseline   " + " ".join(f"{f:6.1%}" for f in base_frac))
    print("  thermal    " + " ".join(f"{f:6.1%}" for f in therm_frac))
    print()
    if therm_frac[0] > base_frac[0]:
        print("Thermal placement moved power toward the heat sink, as "
              "the TRR nets (Eq. 12) are designed to do.")


if __name__ == "__main__":
    main()
