"""Layer-count study: how much wirelength does stacking save?

Places one circuit on 1, 2, 4 and 8 active layers (the paper's Figure 5
experiment) and reports the wirelength reduction 3D integration buys at
a fixed via coefficient, along with the via count and temperature that
pay for it.

Run:
    python examples/layer_count_study.py [scale]
"""

import sys

from repro import (
    Placer3D,
    PlacementConfig,
    evaluate_placement,
    load_benchmark,
)

LAYER_COUNTS = (1, 2, 4, 8)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.04

    print(f"Placing ibm01 (scale {scale}) on "
          f"{', '.join(map(str, LAYER_COUNTS))} layers "
          f"(alpha_ILV = 1e-5)\n")
    print(f"{'layers':>6} {'WL (mm)':>9} {'vs 2D':>8} {'ILVs':>7} "
          f"{'avgT (K)':>9} {'time (s)':>9}")

    baseline_wl = None
    for layers in LAYER_COUNTS:
        netlist = load_benchmark("ibm01", scale=scale)
        config = PlacementConfig(alpha_ilv=1e-5, alpha_temp=0.0,
                                 num_layers=layers, seed=0)
        result = Placer3D(netlist, config).run(check=True)
        report = evaluate_placement(result.placement, config.tech)
        if baseline_wl is None:
            baseline_wl = report.wirelength
        change = (report.wirelength / baseline_wl - 1) * 100
        print(f"{layers:>6} {report.wirelength*1e3:>9.3f} "
              f"{change:>+7.1f}% {report.ilv:>7} "
              f"{report.average_temperature:>9.3f} "
              f"{result.runtime_seconds:>9.1f}")

    print()
    print("More layers shorten wires (Figure 5's shift toward shorter "
          "wirelength) at the price of vias and heat concentrated "
          "farther from the sink.")


if __name__ == "__main__":
    main()
