"""Tool-flow example: Bookshelf in, placed Bookshelf out.

Demonstrates the IBM-PLACE-compatible file interface: a netlist is
written to UCLA Bookshelf files (.nodes/.nets), read back as a fresh
circuit — the entry point for anyone with real Bookshelf benchmarks —
placed, and the result dumped as a 3D .pl file (x, y, layer).

Run:
    python examples/bookshelf_roundtrip.py [output_dir]
"""

import os
import sys
import tempfile

from repro import Placer3D, PlacementConfig, load_benchmark
from repro.core.detailed import check_legal
from repro.netlist import bookshelf


def main() -> None:
    outdir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(
        prefix="repro_bookshelf_")
    os.makedirs(outdir, exist_ok=True)
    prefix = os.path.join(outdir, "demo")

    # 1. produce Bookshelf files (stand-in for a real benchmark download)
    netlist = load_benchmark("ibm02", scale=0.02)
    bookshelf.write_bookshelf(prefix, netlist)
    print(f"Wrote {prefix}.nodes / .nets "
          f"({netlist.num_cells} cells, {netlist.num_nets} nets)")

    # 2. read them back the way a user with real files would
    circuit = bookshelf.read_bookshelf(prefix)
    print(f"Read back: {circuit.num_cells} cells, "
          f"{circuit.num_nets} nets, "
          f"{circuit.num_pins()} pins")

    # 3. place on a 4-layer stack
    config = PlacementConfig(alpha_ilv=1e-5, alpha_temp=0.0,
                             num_layers=4, seed=0)
    result = Placer3D(circuit, config).run()
    check_legal(result.placement)
    print(f"Placed: WL = {result.wirelength*1e3:.3f} mm, "
          f"ILVs = {result.ilv}")

    # 4. dump the 3D placement (fourth .pl column = layer index)
    bookshelf.write_pl(prefix + ".pl", circuit, result.placement)
    print(f"Wrote {prefix}.pl (x, y, layer per cell)")
    with open(prefix + ".pl") as f:
        lines = f.readlines()
    print("First rows:")
    for line in lines[:5]:
        print("  " + line.rstrip())


if __name__ == "__main__":
    main()
