"""Via-budget exploration: minimize wirelength under a via-density cap.

The paper's headline use case: interlayer-via density is limited by
fabrication, so a designer needs the shortest wirelength achievable at
*their* via budget.  This example sweeps the interlayer-via coefficient
(the paper's Figure 3 procedure), prints the tradeoff curve, and picks
the cheapest-wirelength point whose via density fits the budget.

Run:
    python examples/via_budget_explorer.py [budget_per_m2] [scale]
"""

import sys

import numpy as np

from repro import (
    Placer3D,
    PlacementConfig,
    evaluate_placement,
    load_benchmark,
)

#: The paper sweeps alpha_ilv over ~6 decades centred on the average
#: cell width (~1e-5 m).
ALPHA_SWEEP = [5e-9, 2e-7, 2e-6, 1e-5, 8e-5, 6e-4, 5e-3]


def main() -> None:
    budget = float(sys.argv[1]) if len(sys.argv) > 1 else 1.5e11
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.04
    netlist_name = "ibm01"

    print(f"Sweeping alpha_ILV for {netlist_name} at scale {scale}; "
          f"via-density budget {budget:.2e} vias/m^2/interlayer\n")
    print(f"{'alpha_ILV':>10} {'WL (mm)':>9} {'ILVs':>7} "
          f"{'density':>11} {'fits budget':>12}")

    rows = []
    for alpha in ALPHA_SWEEP:
        netlist = load_benchmark(netlist_name, scale=scale)
        config = PlacementConfig(alpha_ilv=alpha, alpha_temp=0.0,
                                 num_layers=4, seed=0)
        result = Placer3D(netlist, config).run()
        report = evaluate_placement(result.placement, config.tech,
                                    thermal=False)
        fits = report.ilv_density <= budget
        rows.append((alpha, report, fits))
        print(f"{alpha:>10.1e} {report.wirelength*1e3:>9.3f} "
              f"{report.ilv:>7} {report.ilv_density:>11.3e} "
              f"{'yes' if fits else 'no':>12}")

    feasible = [(a, r) for a, r, fits in rows if fits]
    print()
    if not feasible:
        print("No sweep point fits the budget — raise the budget or "
              "extend the sweep toward larger alpha_ILV.")
        return
    best_alpha, best = min(feasible, key=lambda ar: ar[1].wirelength)
    shortest = min(r.wirelength for _, r, _ in rows)
    print(f"Chosen point: alpha_ILV = {best_alpha:.1e}")
    print(f"  wirelength {best.wirelength*1e3:.3f} mm "
          f"({(best.wirelength/shortest - 1)*100:+.1f}% vs unconstrained "
          f"minimum)")
    print(f"  via density {best.ilv_density:.3e} "
          f"(budget {budget:.2e})")


if __name__ == "__main__":
    main()
