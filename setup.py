"""Shim for legacy editable installs (the sandbox has no `wheel` package,
so PEP-660 editable builds are unavailable; `pip install -e .` falls back
to `setup.py develop` through this file). All metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
